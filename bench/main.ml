(* Benchmark harness.

   Regenerates every table and figure of the paper's evaluation
   (Section 4 and the Section-5 experiment) as quality tables printed to
   stdout, then times the construction algorithms with Bechamel — one
   Test.make per experiment table (F1, C1..C5, T4, S1).

   Flags:
     --quick        small sweeps and a reduced OPT-A state budget
     --no-bechamel  skip the timing benchmarks
     --csv          also print the Figure-1 rows as CSV *)

module Dataset = Rs_core.Dataset
module Builder = Rs_core.Builder
module E = Rs_experiments

let quick = Array.exists (( = ) "--quick") Sys.argv
let no_bechamel = Array.exists (( = ) "--no-bechamel") Sys.argv
let want_csv = Array.exists (( = ) "--csv") Sys.argv

let section title =
  Printf.printf "\n================ %s ================\n\n%!" title

let options =
  if quick then
    { Builder.default_options with Builder.opt_a_max_states = 2_000_000 }
  else Builder.default_options

(* Every claim verdict printed below is also collected here; the harness
   exits nonzero when any fails, so a perf-motivated refactor that
   silently degrades an experiment result breaks CI rather than a
   reader's trust in EXPERIMENTS.md. *)
let failed_claims : E.Claims.verdict list ref = ref []

let record verdicts =
  List.iter
    (fun (v : E.Claims.verdict) ->
      if not v.E.Claims.holds then failed_claims := v :: !failed_claims)
    verdicts;
  verdicts

let quality_tables () =
  let ds = Dataset.paper () in
  Printf.printf "dataset: %s (n=%d, total=%.0f)\n" (Dataset.name ds)
    (Dataset.n ds) (Dataset.total ds);
  let budgets = if quick then [ 8; 16; 24 ] else E.Figure1.default_budgets in
  section "F1: Figure 1 - SSE vs storage (all ranges, log-scale in paper)";
  let rows =
    E.Figure1.run ~options ~budgets ~methods:E.Figure1.extended_methods ds
  in
  print_string (E.Figure1.table rows);
  Printf.printf "\n(construction seconds)\n\n";
  print_string (E.Figure1.timing_table rows);
  if want_csv then begin
    section "F1 rows as CSV";
    print_string (E.Figure1.csv rows)
  end;
  section "C1-C3, C5: the paper's Figure-1 prose claims";
  print_string (E.Claims.table (record (E.Claims.all rows)));
  section "C4: Section 5 re-optimization (A-reopt)";
  let reopt_budgets = if quick then [ 8; 16 ] else [ 8; 16; 24; 32 ] in
  let reopt_rows = E.Reopt_study.run ~options ~budgets:reopt_budgets ds in
  print_string (E.Reopt_study.table reopt_rows);
  Printf.printf "\n";
  print_string (E.Claims.table (record [ E.Reopt_study.verdict reopt_rows ]));
  section "T4: OPT-A-ROUNDED quality/cost trade-off (Theorem 4)";
  let xs = if quick then [ 1; 8; 64 ] else [ 1; 2; 4; 8; 16; 32; 64 ] in
  let max_states = if quick then 2_000_000 else 60_000_000 in
  let r_rows = E.Rounding_study.run ~buckets:8 ~xs ~max_states ds in
  print_string (E.Rounding_study.table r_rows);
  Printf.printf "\n";
  print_string (E.Claims.table (record [ E.Rounding_study.verdict r_rows ]));
  section "W1: workload-aware histograms (extension)";
  let w_rows = E.Workload_study.run ds in
  print_string (E.Workload_study.table w_rows);
  Printf.printf "\n";
  print_string (E.Claims.table (record [ E.Workload_study.verdict w_rows ]));
  section "D2: two-dimensional range aggregates (extension, footnote 2)";
  let d2_rows = E.Dim2_study.run () in
  print_string (E.Dim2_study.table d2_rows);
  Printf.printf "\n";
  print_string (E.Claims.table (record [ E.Dim2_study.verdict d2_rows ]));
  section "S1: scalability of the polynomial-time constructions";
  let ns = if quick then [ 127; 255 ] else E.Scalability.default_ns in
  print_string (E.Scalability.table (E.Scalability.run ~ns ()))

(* R1: crash-safety.  Kill a small OPT-A build mid-DP (deterministic
   poll budget, Snapshot-mode governor), resume from its snapshot, and
   require the result to match the uninterrupted run bit-for-bit — the
   durability layer must never change what the DP computes. *)
let durability_check () =
  section "R1: durability - OPT-A checkpoint/resume round-trip";
  let module O = Rs_histogram.Opt_a in
  let module G = Rs_util.Governor in
  let data =
    Array.init 24 (fun i -> float_of_int (((13 * i * i) + (7 * i) + 3) mod 41))
  in
  let p = Rs_util.Prefix.create data in
  let buckets = 5 and key_cap = 200_000 in
  let base = O.build_exact ~key_cap p ~buckets in
  let path = Filename.temp_file "rs_bench" ".ckpt" in
  let interrupted =
    let governor = G.create ~deadline_mode:G.Snapshot ~poll_budget:50 () in
    match O.build_exact ~key_cap ~governor ~checkpoint_path:path p ~buckets with
    | _ -> false
    | exception G.Interrupted _ -> true
  in
  let resumed = O.build_exact ~key_cap ~resume_from:path p ~buckets in
  (try Sys.remove path with Sys_error _ -> ());
  let holds =
    interrupted
    && Float.equal resumed.O.sse base.O.sse
    && resumed.O.states = base.O.states
  in
  let verdict =
    {
      E.Claims.claim_id = "R1";
      description =
        "a kill-and-resume OPT-A build reproduces the uninterrupted result \
         bit-for-bit";
      measured =
        Printf.sprintf "interrupted=%b, sse %.6g vs %.6g, states %d vs %d"
          interrupted resumed.O.sse base.O.sse resumed.O.states base.O.states;
      holds;
    }
  in
  print_string (E.Claims.table (record [ verdict ]))

(* P3: the level-parallel DP engine.  Time exact OPT-A at jobs = 1, 2, 4
   (shared UB seed, so only the level sweep is compared), plus the
   polynomial DP methods through Builder, and write the raw numbers to
   BENCH_PR3.json.  Determinism (identical sse/states across job counts)
   is asserted unconditionally; the speedup half of the verdict is
   waived when the runtime reports fewer than two cores, where a
   parallel win is physically unobservable. *)
let jobs_sweep () =
  section "P3: level-parallel DP jobs sweep";
  let cores = Domain.recommended_domain_count () in
  let max_states = if quick then 2_000_000 else 60_000_000 in
  let buckets = if quick then 6 else 8 in
  (* The exact DP may not fit the state budget on the raw data; escalate
     the Definition-3 rounding grid until the sweep fits (the timed
     engine — and the determinism check — are the same either way). *)
  let rec sweep_at x =
    try (x, E.Scalability.run_jobs ~buckets ~max_states ~x ())
    with Rs_histogram.Opt_a.Too_many_states _ when x < 1024 ->
      sweep_at (x * 4)
  in
  let x, rows = sweep_at (if quick then 8 else 1) in
  if x > 1 then
    Printf.printf "(exact DP on x=%d-rounded data to fit max_states=%d)\n\n" x
      max_states;
  print_string (E.Scalability.jobs_table rows);
  let ds = Dataset.paper () in
  let method_rows =
    List.concat_map
      (fun method_name ->
        let seq = ref 0. in
        List.map
          (fun jobs ->
            let options = { options with Builder.jobs } in
            let _, seconds =
              E.Timing.time (fun () ->
                  Builder.build ~options ds ~method_name ~budget_words:32)
            in
            if jobs = 1 then seq := seconds;
            let speedup = if seconds > 0. then !seq /. seconds else 1. in
            (method_name, jobs, seconds, speedup))
          E.Scalability.default_jobs)
      [ "sap0"; "sap1"; "point-opt" ]
  in
  let oc = open_out "BENCH_PR3.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"quick\": %b,\n" quick;
  Printf.fprintf oc "  \"recommended_domain_count\": %d,\n" cores;
  Printf.fprintf oc "  \"opt_a_exact\": [\n";
  let last_i = List.length rows - 1 in
  List.iteri
    (fun i (r : E.Scalability.jobs_row) ->
      Printf.fprintf oc
        "    {\"jobs\": %d, \"seconds\": %.6f, \"speedup_vs_jobs1\": %.4f, \
         \"sse\": %.17g, \"states\": %d}%s\n"
        r.jobs r.seconds
        (E.Scalability.speedup_vs_sequential rows r)
        r.sse r.states
        (if i = last_i then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n  \"methods\": [\n";
  let last_i = List.length method_rows - 1 in
  List.iteri
    (fun i (m, jobs, seconds, speedup) ->
      Printf.fprintf oc
        "    {\"method\": %S, \"jobs\": %d, \"seconds\": %.6f, \
         \"speedup_vs_jobs1\": %.4f}%s\n"
        m jobs seconds speedup
        (if i = last_i then "" else ","))
    method_rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\n(wrote BENCH_PR3.json)\n";
  let deterministic =
    match rows with
    | [] -> false
    | r0 :: rest ->
        List.for_all
          (fun (r : E.Scalability.jobs_row) ->
            Float.equal r.sse r0.E.Scalability.sse
            && r.states = r0.E.Scalability.states)
          rest
  in
  let speedup4 =
    match List.find_opt (fun (r : E.Scalability.jobs_row) -> r.jobs = 4) rows with
    | Some r -> E.Scalability.speedup_vs_sequential rows r
    | None -> 1.
  in
  let waived = cores < 2 in
  let holds = deterministic && (waived || speedup4 >= 0.9) in
  let verdict =
    {
      E.Claims.claim_id = "P3";
      description =
        "the level-parallel OPT-A engine returns identical sse/states at \
         every job count, and jobs=4 is no slower than jobs=1 beyond noise";
      measured =
        Printf.sprintf "identical across jobs=%b; jobs=4 speedup %.2fx%s"
          deterministic speedup4
          (if waived then
             Printf.sprintf " (speedup waived: runtime reports %d core(s))"
               cores
           else "");
      holds;
    }
  in
  print_string (E.Claims.table (record [ verdict ]))

(* P4: the monotone divide-and-conquer DP engine and the O(n) SSE fast
   path.  Times each certified Dp-backed method under both engines on
   sorted instances — the certified regime; unsorted inputs stay on the
   level engine by construction, so this is exactly the population the
   monotone engine serves — plus full-SSE measurement through the
   closed forms vs the O(n²) sweep, and writes BENCH_PR4.json.  Result
   equality is asserted unconditionally at every size; the speed half
   of the verdict compares the engines at the largest n and is waived
   when the level engine finishes too fast to time reliably there
   (small-hardware guard in the spirit of P3's core-count waiver). *)
let engine_bench () =
  section "P4: monotone D&C DP engine + O(n) SSE fast path";
  let module Dp = Rs_histogram.Dp in
  let module H = Rs_histogram.Histogram in
  let module Synopsis = Rs_core.Synopsis in
  let ns = if quick then [ 255; 1023 ] else [ 511; 2047; 8191 ] in
  let buckets = 12 in
  let best_of_3 f =
    let t = ref infinity in
    for _ = 1 to 3 do
      let _, s = E.Timing.time f in
      if s < !t then t := s
    done;
    !t
  in
  let methods =
    [
      ( "point-opt",
        fun engine p ~buckets ->
          snd (Rs_histogram.Vopt.build_with_cost ~engine p ~buckets) );
      ( "v-optimal",
        fun engine p ~buckets ->
          snd
            (Rs_histogram.Vopt.build_with_cost ~weighted:false ~engine p
               ~buckets) );
      ( "prefix-opt",
        fun engine p ~buckets ->
          snd (Rs_histogram.Prefix_opt.build_with_cost ~engine p ~buckets) );
    ]
  in
  let engine_rows = ref [] in
  List.iter
    (fun n ->
      let ds = Dataset.generate (Printf.sprintf "sorted-zipf-%d" n) in
      let p = Dataset.prefix ds in
      List.iter
        (fun (name, run) ->
          let cost_level = ref nan and cost_mono = ref nan in
          let level_s =
            best_of_3 (fun () -> cost_level := run Dp.Level p ~buckets)
          in
          let mono_s =
            best_of_3 (fun () -> cost_mono := run Dp.Monotone p ~buckets)
          in
          let scale = Float.max 1. (abs_float !cost_level) in
          let equal = abs_float (!cost_level -. !cost_mono) /. scale <= 1e-9 in
          engine_rows := (name, n, level_s, mono_s, equal) :: !engine_rows)
        methods)
    ns;
  let engine_rows = List.rev !engine_rows in
  Printf.printf "%-12s %6s %12s %12s %9s %6s\n" "method" "n" "level(s)"
    "monotone(s)" "speedup" "equal";
  List.iter
    (fun (m, n, ls, ms, eq) ->
      Printf.printf "%-12s %6d %12.6f %12.6f %8.2fx %6b\n" m n ls ms
        (if ms > 0. then ls /. ms else 1.)
        eq)
    engine_rows;
  (* SSE measurement: closed forms vs the O(n²) sweep, one synopsis per
     lowering family (prefix, piecewise, shared-prefix wavelet,
     two-sided wavelet). *)
  let sse_rows = ref [] in
  List.iter
    (fun n ->
      let ds = Dataset.generate (Printf.sprintf "zipf-%d" n) in
      let build m = Builder.build ~options ds ~method_name:m ~budget_words:32 in
      List.iter
        (fun m ->
          let s = build m in
          let fast = ref nan and slow = ref nan in
          let fast_s = best_of_3 (fun () -> fast := Synopsis.sse ds s) in
          let slow_s = best_of_3 (fun () -> slow := Synopsis.sse_sweep ds s) in
          let scale = Float.max 1. (abs_float !slow) in
          let equal = abs_float (!fast -. !slow) /. scale <= 1e-8 in
          sse_rows := (m, n, fast_s, slow_s, equal) :: !sse_rows)
        [ "v-optimal"; "sap1"; "wave-range-opt"; "wave-aa" ])
    ns;
  let sse_rows = List.rev !sse_rows in
  Printf.printf "\n%-16s %6s %12s %12s %9s %6s\n" "sse path" "n" "fast(s)"
    "sweep(s)" "speedup" "equal";
  List.iter
    (fun (m, n, fs, ss, eq) ->
      Printf.printf "%-16s %6d %12.6f %12.6f %8.0fx %6b\n" m n fs ss
        (if fs > 0. then ss /. fs else 1.)
        eq)
    sse_rows;
  let oc = open_out "BENCH_PR4.json" in
  Printf.fprintf oc "{\n  \"quick\": %b,\n  \"buckets\": %d,\n" quick buckets;
  Printf.fprintf oc "  \"engines\": [\n";
  let last_i = List.length engine_rows - 1 in
  List.iteri
    (fun i (m, n, ls, ms, eq) ->
      Printf.fprintf oc
        "    {\"method\": %S, \"n\": %d, \"level_seconds\": %.6f, \
         \"monotone_seconds\": %.6f, \"speedup\": %.4f, \"cost_equal\": %b}%s\n"
        m n ls ms
        (if ms > 0. then ls /. ms else 1.)
        eq
        (if i = last_i then "" else ","))
    engine_rows;
  Printf.fprintf oc "  ],\n  \"sse_paths\": [\n";
  let last_i = List.length sse_rows - 1 in
  List.iteri
    (fun i (m, n, fs, ss, eq) ->
      Printf.fprintf oc
        "    {\"synopsis\": %S, \"n\": %d, \"fast_seconds\": %.6f, \
         \"sweep_seconds\": %.6f, \"speedup\": %.4f, \"sse_equal\": %b}%s\n"
        m n fs ss
        (if fs > 0. then ss /. fs else 1.)
        eq
        (if i = last_i then "" else ","))
    sse_rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\n(wrote BENCH_PR4.json)\n";
  let all_equal =
    List.for_all (fun (_, _, _, _, eq) -> eq) engine_rows
    && List.for_all (fun (_, _, _, _, eq) -> eq) sse_rows
  in
  let n_max = List.fold_left max 0 ns in
  let at_max = List.filter (fun (_, n, _, _, _) -> n = n_max) engine_rows in
  (* Below ~10ms of level-engine work the comparison is timer noise on
     slow/contended hardware; the equality half still binds. *)
  let waived =
    List.for_all (fun (_, _, ls, _, _) -> ls < 0.01) at_max
  in
  let mono_no_slower =
    List.for_all (fun (_, _, ls, ms, _) -> ms <= ls *. 1.10) at_max
  in
  let holds = all_equal && (waived || mono_no_slower) in
  let verdict =
    {
      E.Claims.claim_id = "P4";
      description =
        "the monotone D&C engine matches the level engine's optimum on \
         certified inputs and is no slower at the largest n; the closed-form \
         SSE paths match the O(n^2) sweep";
      measured =
        Printf.sprintf "all results equal=%b; monotone<=1.1x level at n=%d: %b%s"
          all_equal n_max mono_no_slower
          (if waived then " (speed waived: level <10ms, timer noise)" else "");
      holds;
    }
  in
  print_string (E.Claims.table (record [ verdict ]))

(* O1: observability overhead.  The metrics/trace layer must be free
   when disabled — recording sites are one branch on a bool ref — and
   cheap enough when enabled that an operator can leave RS_METRICS=1 on.
   Times the quick OPT-A rounded workload with the registry disabled
   (twice, the spread estimating timer noise) and enabled, writes
   BENCH_PR5.json, and fails the run if disabled-mode overhead exceeds
   noise.  Like P3/P4, the timing half is waived on hardware where the
   workload is too fast to time reliably; the within-noise bound uses
   the measured spread so a loaded CI box doesn't fail spuriously. *)
let obs_overhead () =
  section "O1: observability instrumentation overhead";
  let module M = Rs_util.Metrics in
  let module T = Rs_util.Trace in
  let ds = Dataset.paper () in
  let p = Dataset.prefix ds in
  let workload () =
    ignore (Rs_histogram.Opt_a.build_rounded ~max_states:5_000_000 p ~buckets:6 ~x:8)
  in
  let best_of_3 f =
    let t = ref infinity in
    for _ = 1 to 3 do
      let _, s = E.Timing.time f in
      if s < !t then t := s
    done;
    !t
  in
  let was_metrics = M.enabled () and was_trace = T.enabled () in
  M.disable ();
  T.disable ();
  workload () (* warm up allocators/caches off the clock *);
  let disabled_a = best_of_3 workload in
  let disabled_b = best_of_3 workload in
  let disabled = Float.min disabled_a disabled_b in
  let noise =
    if disabled > 0. then abs_float (disabled_a -. disabled_b) /. disabled
    else 0.
  in
  M.reset ();
  M.enable ();
  T.enable ();
  let enabled = best_of_3 workload in
  let states_recorded =
    match List.assoc_opt "opt_a.states" (M.report ()).M.r_counters with
    | Some v -> v
    | None -> 0
  in
  M.disable ();
  T.disable ();
  if was_metrics then M.enable ();
  if was_trace then T.enable ();
  (* Disabled-path microbenchmark: cost of one not-recording incr. *)
  let c = M.counter "bench.o1.disabled_probe" in
  let iters = 10_000_000 in
  let _, micro_s =
    E.Timing.time (fun () ->
        for _ = 1 to iters do
          M.incr c
        done)
  in
  let ns_per_disabled_incr = micro_s /. float_of_int iters *. 1e9 in
  let overhead =
    if disabled > 0. then (enabled -. disabled) /. disabled else 0.
  in
  Printf.printf "disabled: %.6fs (runs %.6f / %.6f, noise %.1f%%)\n" disabled
    disabled_a disabled_b (100. *. noise);
  Printf.printf "enabled:  %.6fs (overhead %+.1f%%, %d states recorded)\n"
    enabled (100. *. overhead) states_recorded;
  Printf.printf "disabled-mode incr: %.2f ns\n" ns_per_disabled_incr;
  let tolerance = Float.max 0.15 (2. *. noise) in
  (* Below ~10ms the workload is timer noise on slow hardware; the
     recording-works half (nonzero counters) still binds. *)
  let waived = disabled < 0.01 in
  let within_noise = enabled <= disabled *. (1. +. tolerance) in
  let recorded = states_recorded > 0 in
  let holds = recorded && (waived || within_noise) in
  let oc = open_out "BENCH_PR5.json" in
  Printf.fprintf oc "{\n  \"quick\": %b,\n" quick;
  Printf.fprintf oc "  \"workload\": \"opt-a-rounded(x=8) B=6 on paper dataset\",\n";
  Printf.fprintf oc "  \"disabled_seconds\": %.6f,\n" disabled;
  Printf.fprintf oc "  \"disabled_runs\": [%.6f, %.6f],\n" disabled_a disabled_b;
  Printf.fprintf oc "  \"noise_fraction\": %.4f,\n" noise;
  Printf.fprintf oc "  \"enabled_seconds\": %.6f,\n" enabled;
  Printf.fprintf oc "  \"overhead_fraction\": %.4f,\n" overhead;
  Printf.fprintf oc "  \"tolerance_fraction\": %.4f,\n" tolerance;
  Printf.fprintf oc "  \"states_recorded\": %d,\n" states_recorded;
  Printf.fprintf oc "  \"ns_per_disabled_incr\": %.2f,\n" ns_per_disabled_incr;
  Printf.fprintf oc "  \"waived\": %b,\n" waived;
  Printf.fprintf oc "  \"holds\": %b\n}\n" holds;
  close_out oc;
  Printf.printf "\n(wrote BENCH_PR5.json)\n";
  let verdict =
    {
      E.Claims.claim_id = "O1";
      description =
        "with the registry enabled the quick OPT-A workload is within noise \
         of the disabled run, and the enabled run records nonzero DP state \
         counters";
      measured =
        Printf.sprintf
          "overhead %+.1f%% (tolerance %.1f%%, noise %.1f%%); %d states \
           recorded; %.2f ns/disabled incr%s"
          (100. *. overhead) (100. *. tolerance) (100. *. noise)
          states_recorded ns_per_disabled_incr
          (if waived then " (timing waived: workload <10ms)" else "");
      holds;
    }
  in
  print_string (E.Claims.table (record [ verdict ]))

(* G6: fault-tolerant segmented builds.  Three measurements on one
   dataset: (a) segmented vs monolithic build time at jobs = 1 and 4
   (coarse one-domain-per-segment parallelism vs the level-parallel
   DP); (b) the greedy cross-segment planner vs a uniform split, which
   must win on the skewed dataset while never exceeding the global
   budget; (c) a kill-at-a-segment-boundary resume round-trip, which
   must reproduce the uninterrupted build bit-for-bit.  Raw numbers go
   to BENCH_PR6.json; (b) and (c) are claim verdicts, (a) is recorded
   but never asserted (a speedup is unobservable on one core). *)
let segmented_bench () =
  section "G6: fault-tolerant segmented builds (supervisor + planner)";
  let module Sup = Rs_core.Supervisor in
  let module Seg = Rs_core.Segmented in
  let module G = Rs_util.Governor in
  let ds = Dataset.generate (if quick then "zipf-1024" else "zipf-2048") in
  let method_name = "point-opt" in
  let budget_words = 96 in
  let segments = 8 in
  let build ~planner ~jobs =
    let options = { options with Builder.jobs } in
    E.Timing.time (fun () ->
        match
          Sup.build ~options ~planner ds ~method_name ~budget_words ~segments
        with
        | Ok (t, report) -> (t, report)
        | Error e -> failwith (Rs_util.Error.to_string e))
  in
  let (seg_greedy, _), seg_s1 = build ~planner:`Greedy ~jobs:1 in
  let (seg_greedy4, _), seg_s4 = build ~planner:`Greedy ~jobs:4 in
  let (seg_uniform, _), _ = build ~planner:`Uniform ~jobs:1 in
  let mono_time jobs =
    let options = { options with Builder.jobs } in
    snd
      (E.Timing.time (fun () ->
           ignore (Builder.build ~options ds ~method_name ~budget_words)))
  in
  let mono_s1 = mono_time 1 in
  let mono_s4 = mono_time 4 in
  let sse_greedy = Seg.sse ds seg_greedy in
  let sse_uniform = Seg.sse ds seg_uniform in
  let greedy_words = Seg.storage_words seg_greedy in
  let uniform_words = Seg.storage_words seg_uniform in
  Printf.printf "build time (n=%d, %s, %dw, %d segments):\n" (Dataset.n ds)
    method_name budget_words segments;
  Printf.printf "  monolithic  jobs=1 %.3fs   jobs=4 %.3fs\n" mono_s1 mono_s4;
  Printf.printf "  segmented   jobs=1 %.3fs   jobs=4 %.3fs\n" seg_s1 seg_s4;
  Printf.printf "planner SSE: greedy %.6g (%dw)  uniform %.6g (%dw)\n"
    sse_greedy greedy_words sse_uniform uniform_words;
  (* (c) kill at a segment boundary, then resume.  The supervisor's
     boundary governor expires deterministically (poll budget, Snapshot
     mode), the manifest pins the completed segments, and the resumed
     build must deliver the same bytes as an uninterrupted one. *)
  let rds = Dataset.generate "zipf-256" in
  let rsegs = 8 and rbudget = 64 in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rs_bench_seg.%d" (Unix.getpid ()))
  in
  let clean () =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f ->
          let p = Filename.concat dir f in
          if Sys.is_directory p then (
            Array.iter (fun g -> Sys.remove (Filename.concat p g))
              (Sys.readdir p);
            Unix.rmdir p)
          else Sys.remove p)
        (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  clean ();
  let baseline =
    match
      Sup.build ~planner:`Uniform rds ~method_name:"opt-a"
        ~budget_words:rbudget ~segments:rsegs
    with
    | Ok (t, _) -> Seg.to_string t
    | Error e -> failwith (Rs_util.Error.to_string e)
  in
  (* expire at the 4th boundary poll: segments 0-2 committed, the rest
     pending *)
  let kill_governor = G.create ~deadline_mode:G.Snapshot ~poll_budget:4 () in
  let options_kill = { options with Builder.governor = kill_governor } in
  let interrupted =
    match
      Sup.build ~options:options_kill ~planner:`Uniform ~manifest_dir:dir rds
        ~method_name:"opt-a" ~budget_words:rbudget ~segments:rsegs
    with
    | Error (Rs_util.Error.Interrupted _) -> true
    | Ok _ | Error _ -> false
  in
  let resumed =
    match
      Sup.build ~planner:`Uniform ~manifest_dir:dir ~resume:true rds
        ~method_name:"opt-a" ~budget_words:rbudget ~segments:rsegs
    with
    | Ok (t, report) ->
        Some (Seg.to_string t, report)
    | Error _ -> None
  in
  clean ();
  let resumed_count =
    match resumed with
    | Some (_, report) ->
        Array.fold_left
          (fun acc (s : Sup.seg_report) -> if s.Sup.resumed then acc + 1 else acc)
          0 report.Sup.segs
    | None -> 0
  in
  let roundtrip =
    interrupted
    && (match resumed with Some (bytes, _) -> bytes = baseline | None -> false)
    && resumed_count = 3
  in
  let planner_holds =
    sse_greedy <= sse_uniform
    && greedy_words <= budget_words
    && uniform_words <= budget_words
  in
  let oc = open_out "BENCH_PR6.json" in
  Printf.fprintf oc "{\n  \"quick\": %b,\n" quick;
  Printf.fprintf oc "  \"dataset\": %S,\n" (Dataset.name ds);
  Printf.fprintf oc "  \"method\": %S,\n" method_name;
  Printf.fprintf oc "  \"budget_words\": %d,\n" budget_words;
  Printf.fprintf oc "  \"segments\": %d,\n" segments;
  Printf.fprintf oc "  \"monolithic_seconds\": {\"jobs1\": %.6f, \"jobs4\": %.6f},\n"
    mono_s1 mono_s4;
  Printf.fprintf oc "  \"segmented_seconds\": {\"jobs1\": %.6f, \"jobs4\": %.6f},\n"
    seg_s1 seg_s4;
  Printf.fprintf oc "  \"planner\": {\"greedy_sse\": %.17g, \"uniform_sse\": %.17g, \
                     \"greedy_words\": %d, \"uniform_words\": %d},\n"
    sse_greedy sse_uniform greedy_words uniform_words;
  Printf.fprintf oc "  \"resume\": {\"interrupted\": %b, \"resumed_segments\": %d, \
                     \"bit_identical\": %b},\n"
    interrupted resumed_count roundtrip;
  Printf.fprintf oc "  \"jobs4_bit_identical\": %b\n}\n"
    (Seg.to_string seg_greedy = Seg.to_string seg_greedy4);
  close_out oc;
  Printf.printf "\n(wrote BENCH_PR6.json)\n";
  let verdicts =
    [
      {
        E.Claims.claim_id = "G6a";
        description =
          "the greedy cross-segment planner never beats the budget and never \
           loses to a uniform split on the skewed dataset";
        measured =
          Printf.sprintf "greedy SSE %.6g (%dw) vs uniform %.6g (%dw), budget %dw"
            sse_greedy greedy_words sse_uniform uniform_words budget_words;
        holds = planner_holds;
      };
      {
        E.Claims.claim_id = "G6b";
        description =
          "a segmented build killed at a segment boundary resumes from its \
           manifest (skipping the committed segments) and reproduces the \
           uninterrupted synopsis bit-for-bit";
        measured =
          Printf.sprintf "interrupted=%b, resumed_segments=%d, bit_identical=%b"
            interrupted resumed_count roundtrip;
        holds = roundtrip;
      };
    ]
  in
  print_string (E.Claims.table (record verdicts))

(* G7: the fault-tolerant serving daemon.  Three measurements against a
   store built in a scratch directory: (a) in-process throughput and
   tail latency of exact single-range queries plus the bound rung under
   poll-budget pressure; (b) recovery after a kill — a server is
   abandoned with no orderly shutdown and a fresh one opens the same
   store; time to first answer is reported, and every probe must come
   back byte-identical (G7a, the restart-determinism claim); (c) a
   seeded chaos soak — the same harness the [@serve]/[@fault] gate
   runs — which must hold every invariant (G7b).  Raw numbers go to
   BENCH_PR7.json. *)
let serve_bench () =
  section "G7: serving daemon (rs_serve)";
  let module Server = Rs_serve.Server in
  let module P = Rs_serve.Protocol in
  let module Chaos = Rs_serve.Chaos in
  let module Store = Rs_core.Store in
  let module Rng = Rs_dist.Rng in
  let module Mclock = Rs_util.Mclock in
  let ds = Dataset.paper () in
  let n = Dataset.n ds in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rs_bench_serve.%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  let clean () = if Sys.file_exists dir then rm_rf dir in
  clean ();
  let store = Store.open_dir dir in
  List.iter
    (fun (name, method_name, budget_words) ->
      Store.put store ~name (Builder.build ds ~method_name ~budget_words))
    [
      ("hist", "point-opt", 24);
      ("sap1", "sap1", 24);
      ("wave", "wave-range-opt", 24);
    ];
  let config ?(cache = 512) ?(queue = 64) () =
    {
      (Server.default_config ~store_dir:dir) with
      Server.dataset = Some ds;
      cache_capacity = cache;
      queue_capacity = queue;
    }
  in
  let query ?budget ~id ~synopsis ranges =
    P.encode_request
      (P.Query
         {
           id = Some id;
           synopsis;
           ranges = Array.of_list ranges;
           deadline_ms = None;
           poll_budget = budget;
           attempt = 1;
         })
  in
  let is_rung want line =
    match P.decode_response line with
    | Ok (P.Answers { rung; _ }) -> rung = want
    | _ -> false
  in
  (* (a) throughput and p99 latency, one rung at a time.  The cache is
     sized to zero so every request does real evaluation work. *)
  let requests = if quick then 400 else 4000 in
  let latency_sweep ~label ~batch ~budget ~want =
    let server =
      match Server.create (config ~cache:0 ()) with
      | Ok s -> s
      | Error e -> failwith (Rs_util.Error.to_string e)
    in
    let rng = Rng.create 0x9e7 in
    let lat = Array.make requests 0. in
    let wrong = ref 0 in
    let t0 = Mclock.now () in
    for i = 0 to requests - 1 do
      let ranges =
        List.init batch (fun _ ->
            let a = 1 + Rng.int rng n in
            let b = a + Rng.int rng (n - a + 1) in
            (a, b))
      in
      let line = query ?budget ~id:(string_of_int i) ~synopsis:"hist" ranges in
      let s = Mclock.now () in
      let reply = Server.handle_line server line in
      lat.(i) <- Mclock.now () -. s;
      if not (is_rung want reply) then incr wrong
    done;
    let total = Mclock.now () -. t0 in
    Server.close server;
    Array.sort compare lat;
    let pct p = lat.(min (requests - 1) (int_of_float (p *. float requests))) in
    let qps = float requests /. total in
    Printf.printf
      "%-12s %7.0f req/s   p50 %7.1f us   p99 %7.1f us   wrong rung %d\n" label
      qps
      (pct 0.50 *. 1e6)
      (pct 0.99 *. 1e6)
      !wrong;
    (qps, pct 0.50, pct 0.99, !wrong)
  in
  Printf.printf
    "in-process, %d requests per rung (exact: 1 range, bound: 80 ranges; \
     n=%d):\n"
    requests n;
  let exact_qps, exact_p50, exact_p99, exact_wrong =
    latency_sweep ~label:"exact" ~batch:1 ~budget:None ~want:P.Exact
  in
  let bound_qps, bound_p50, bound_p99, bound_wrong =
    (* 80 ranges = 2 chunks of exact work, but a 3-poll budget leaves
       only one working poll after admission: the prefix rung is the
       cheapest that fits — the degraded-but-bounded path. *)
    latency_sweep ~label:"bound (b=3)" ~batch:80 ~budget:(Some 3) ~want:P.Bound
  in
  (* (b) recovery after a kill: the first server is abandoned without
     any shutdown; a fresh one must reload the generation from the
     store and serve the identical bytes. *)
  let probe_lines =
    [
      query ~id:"r1" ~synopsis:"hist" [ (1, n); (3, 17); (n / 2, n) ];
      query ~id:"r2" ~synopsis:"sap1" [ (1, 5) ];
      query ~id:"r3" ~synopsis:"wave" [ (2, 64); (1, 1) ];
      query ~id:"r4" ~synopsis:"hist" ~budget:3 [ (1, 9); (4, 44) ];
    ]
  in
  let first = Chaos.probe (config ()) ~lines:probe_lines in
  let t0 = Mclock.now () in
  let second = Chaos.probe (config ()) ~lines:probe_lines in
  let recovery_s = Mclock.now () -. t0 in
  let restart_identical = first = second in
  Printf.printf
    "recovery after kill: %.3f ms to reopen the store and answer %d probes \
     (byte-identical: %b)\n"
    (recovery_s *. 1e3)
    (List.length probe_lines) restart_identical;
  (* (c) the seeded soak: same harness as the test gate, bench-sized.
     Quick mode keeps it under ten seconds. *)
  let soak_requests = if quick then 150 else 600 in
  (* A small queue keeps the op mix balanced: overflow bursts scale with
     the queue capacity and would otherwise eat the request budget. *)
  let outcome =
    Chaos.soak ~requests:soak_requests ~seed:0xB7 (config ~queue:4 ~cache:64 ())
  in
  Printf.printf "soak: %s\n" (Format.asprintf "%a" Chaos.pp_outcome outcome);
  clean ();
  let soak_holds = outcome.Chaos.violations = [] in
  let oc = open_out "BENCH_PR7.json" in
  Printf.fprintf oc "{\n  \"quick\": %b,\n  \"dataset\": %S,\n" quick
    (Dataset.name ds);
  Printf.fprintf oc "  \"requests_per_rung\": %d,\n" requests;
  Printf.fprintf oc
    "  \"exact\": {\"qps\": %.1f, \"p50_us\": %.2f, \"p99_us\": %.2f},\n"
    exact_qps (exact_p50 *. 1e6) (exact_p99 *. 1e6);
  Printf.fprintf oc
    "  \"bound\": {\"qps\": %.1f, \"p50_us\": %.2f, \"p99_us\": %.2f},\n"
    bound_qps (bound_p50 *. 1e6) (bound_p99 *. 1e6);
  Printf.fprintf oc
    "  \"recovery\": {\"ms_to_first_answers\": %.3f, \"byte_identical\": %b},\n"
    (recovery_s *. 1e3) restart_identical;
  Printf.fprintf oc
    "  \"soak\": {\"requests\": %d, \"exact\": %d, \"bound\": %d, \"stale\": \
     %d, \"refused\": %d, \"shed\": %d, \"injected\": %d, \"reloads\": %d, \
     \"violations\": %d}\n}\n"
    outcome.Chaos.requests outcome.Chaos.exact outcome.Chaos.bound
    outcome.Chaos.stale outcome.Chaos.refused outcome.Chaos.shed
    outcome.Chaos.injected outcome.Chaos.reloads
    (List.length outcome.Chaos.violations);
  close_out oc;
  Printf.printf "\n(wrote BENCH_PR7.json)\n";
  let verdicts =
    [
      {
        E.Claims.claim_id = "G7a";
        description =
          "a server killed with no shutdown and restarted against the same \
           store serves byte-identical answers on every rung";
        measured =
          Printf.sprintf "recovery %.3f ms, %d probes, byte_identical=%b, \
                          wrong-rung exact=%d bound=%d"
            (recovery_s *. 1e3)
            (List.length probe_lines) restart_identical exact_wrong bound_wrong;
        holds = restart_identical && exact_wrong = 0 && bound_wrong = 0;
      };
      {
        E.Claims.claim_id = "G7b";
        description =
          "the seeded chaos soak (queries, overload bursts, reloads, fault \
           injections, shutdown) holds every serving invariant: no wrong \
           answers, no unlabeled degradation, no lost shutdowns";
        measured = Format.asprintf "%a" Chaos.pp_outcome outcome;
        holds = soak_holds;
      };
    ]
  in
  print_string (E.Claims.table (record verdicts))

(* G9: the allocation-lean batched serving fast path.  Four measurements
   against a store built in a scratch directory:

   (a) matched-geometry rung latency — exact and bound both at 80
   ranges per request (BENCH_PR7 compared bound@80 against exact@1, a
   21x "gap" that was mostly the 80-float response encode, paid by
   both rungs); the exact@1 row is kept for continuity.  G9a claims
   the bound p50 within 4x of the exact p50 at the same geometry.

   (b) the vectorized batch kernel against its per-range estimator
   twin, on the evaluation alone (G9b, >= 1.5x, timing-waived when
   the baseline is untimeable).

   (c) a forked daemon over a real Unix socket driven by pipelined
   concurrent clients: aggregate 4-client qps must not fall below
   1-client qps (timing half, waived below 2 cores), and the
   per-client response streams must be byte-identical across a
   kill -9 and restart with every response routed to the asking
   connection (determinism half, never waived) — G9c.

   (d) the steady-state allocation contract: one warm exact request
   through the whole server path, Gc.minor_words delta against the
   O(k) budget the @serve gate enforces (G9d, never waived).

   Raw numbers go to BENCH_PR9.json. *)
let serve_batch_bench () =
  section "G9: batched serving fast path (vectorized eval, LRU cache, multi-client)";
  let module Server = Rs_serve.Server in
  let module Generation = Rs_serve.Generation in
  let module P = Rs_serve.Protocol in
  let module Store = Rs_core.Store in
  let module Rng = Rs_dist.Rng in
  let module Mclock = Rs_util.Mclock in
  let cores = Domain.recommended_domain_count () in
  let ds = Dataset.paper () in
  let n = Dataset.n ds in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rs_bench_serve9.%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  let clean () = if Sys.file_exists dir then rm_rf dir in
  clean ();
  let store = Store.open_dir dir in
  List.iter
    (fun (name, method_name, budget_words) ->
      Store.put store ~name (Builder.build ds ~method_name ~budget_words))
    [ ("hist", "point-opt", 24); ("sap1", "sap1", 24) ];
  let config ?(cache = 512) () =
    {
      (Server.default_config ~store_dir:dir) with
      Server.dataset = Some ds;
      cache_capacity = cache;
    }
  in
  let det_ranges c i =
    (* pure function of (client, index): byte determinism across runs
       must not depend on a shared RNG's interleaving *)
    let a = 1 + (((i * 7) + (c * 3)) mod n) in
    let b = min n (a + ((i * 13) mod 17)) in
    [ (a, b) ]
  in
  let query ?budget ~id ~synopsis ranges =
    P.encode_request
      (P.Query
         {
           id = Some id;
           synopsis;
           ranges = Array.of_list ranges;
           deadline_ms = None;
           poll_budget = budget;
           attempt = 1;
         })
  in
  (* (a) matched-geometry rung latency, in-process, cache disabled so
     every request does real evaluation work. *)
  let requests = if quick then 400 else 4000 in
  let latency_sweep ~label ~batch ~budget ~want =
    let server =
      match Server.create (config ~cache:0 ()) with
      | Ok s -> s
      | Error e -> failwith (Rs_util.Error.to_string e)
    in
    let rng = Rng.create 0x9e9 in
    let lat = Array.make requests 0. in
    let wrong = ref 0 in
    let t0 = Mclock.now () in
    for i = 0 to requests - 1 do
      let ranges =
        List.init batch (fun _ ->
            let a = 1 + Rng.int rng n in
            let b = a + Rng.int rng (n - a + 1) in
            (a, b))
      in
      let line = query ?budget ~id:(string_of_int i) ~synopsis:"hist" ranges in
      let s = Mclock.now () in
      let reply = Server.handle_line server line in
      lat.(i) <- Mclock.now () -. s;
      (match P.decode_response reply with
      | Ok (P.Answers { rung; _ }) when rung = want -> ()
      | _ -> incr wrong)
    done;
    let total = Mclock.now () -. t0 in
    Server.close server;
    Array.sort compare lat;
    let pct p = lat.(min (requests - 1) (int_of_float (p *. float requests))) in
    let qps = float requests /. total in
    Printf.printf
      "%-16s %7.0f req/s   p50 %7.1f us   p99 %7.1f us   wrong rung %d\n" label
      qps
      (pct 0.50 *. 1e6)
      (pct 0.99 *. 1e6)
      !wrong;
    (qps, pct 0.50, pct 0.99, !wrong)
  in
  Printf.printf
    "in-process, %d requests per row, matched geometry (80 ranges; n=%d):\n"
    requests n;
  let _, exact1_p50, _, _ =
    latency_sweep ~label:"exact (k=1)" ~batch:1 ~budget:None ~want:P.Exact
  in
  let exact_qps, exact_p50, exact_p99, exact_wrong =
    latency_sweep ~label:"exact (k=80)" ~batch:80 ~budget:None ~want:P.Exact
  in
  let bound_qps, bound_p50, bound_p99, bound_wrong =
    latency_sweep ~label:"bound (k=80,b=3)" ~batch:80 ~budget:(Some 3)
      ~want:P.Bound
  in
  let rung_ratio = bound_p50 /. exact_p50 in
  let rung_timeable = exact_p50 >= 1e-6 in
  Printf.printf
    "matched-geometry p50 ratio bound/exact: %.2fx (PR7 compared bound@80 \
     to exact@1: that ratio is %.1fx here)\n"
    rung_ratio
    (bound_p50 /. exact1_p50);
  (* (b) the batch kernel against its per-range twin, evaluation only. *)
  let gen =
    match Generation.load ~dataset:ds ~gen_id:1 dir with
    | Ok g -> g
    | Error e -> failwith (Rs_util.Error.to_string e)
  in
  let entry =
    match Generation.find gen "hist" with
    | Some e -> e
    | None -> failwith "hist entry missing"
  in
  let k = 80 in
  let rng = Rng.create 0xBA7C4 in
  let ranges =
    Array.init k (fun _ ->
        let a = 1 + Rng.int rng n in
        let b = a + Rng.int rng (n - a + 1) in
        (a, b))
  in
  let out = Array.make k 0. in
  let iters = if quick then 3_000 else 12_000 in
  let time_best f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Mclock.now () in
      f ();
      best := min !best (Mclock.now () -. t0)
    done;
    !best
  in
  let fast_s =
    time_best (fun () ->
        for _ = 1 to iters do
          Rs_query.Batch.eval entry.Generation.plan ~ranges ~lo:0 ~hi:(k - 1)
            ~out
        done)
  in
  let twin_s =
    time_best (fun () ->
        for _ = 1 to iters do
          for i = 0 to k - 1 do
            let a, b = ranges.(i) in
            out.(i) <- Rs_core.Synopsis.estimate entry.Generation.syn ~a ~b
          done
        done)
  in
  let kernel_speedup = twin_s /. fast_s in
  let kernel_timeable = twin_s >= 0.05 in
  Printf.printf
    "batch kernel: %.1f ns/range   per-range twin: %.1f ns/range   \
     speedup %.2fx (%d x %d ranges)\n"
    (fast_s *. 1e9 /. float (iters * k))
    (twin_s *. 1e9 /. float (iters * k))
    kernel_speedup iters k;
  (* (c) the forked daemon under pipelined concurrent clients. *)
  let socket = Filename.concat dir "bench.sock" in
  let spawn_daemon () =
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        (* the child serves until shutdown; _exit skips the parent's
           at_exit machinery (buffered bench output, temp cleanups) *)
        (try
           let server =
             match Server.create (config ()) with
             | Ok s -> s
             | Error e -> failwith (Rs_util.Error.to_string e)
           in
           Rs_serve.Daemon.run server ~socket
         with _ -> ());
        Unix._exit 0
    | pid -> pid
  in
  let rec connect_retry tries =
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect sock (Unix.ADDR_UNIX socket) with
    | () -> sock
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when tries > 0 ->
        Unix.close sock;
        Unix.sleepf 0.05;
        connect_retry (tries - 1)
  in
  let write_all fd s =
    let len = String.length s in
    let off = ref 0 in
    while !off < len do
      off := !off + Unix.write_substring fd s !off (len - !off)
    done
  in
  (* Drive [clients] pipelined connections (window of 32 in flight per
     client), collecting each client's response lines in arrival order.
     Returns (aggregate qps, per-client response lines). *)
  let drive ~clients ~per_client =
    let socks = Array.init clients (fun _ -> connect_retry 100) in
    let sent = Array.make clients 0 in
    let got = Array.make clients 0 in
    let acc = Array.init clients (fun _ -> Buffer.create 4096) in
    let read_buf = Bytes.create 65536 in
    let window = 32 in
    let total = clients * per_client in
    let total_got () = Array.fold_left ( + ) 0 got in
    let deadline = Unix.gettimeofday () +. 60. in
    let t0 = Mclock.now () in
    while total_got () < total do
      if Unix.gettimeofday () > deadline then
        failwith "bench daemon stalled (60s without completing)";
      Array.iteri
        (fun c sock ->
          while sent.(c) < per_client && sent.(c) - got.(c) < window do
            let line =
              query
                ~id:(Printf.sprintf "c%d-%d" c sent.(c))
                ~synopsis:"hist" (det_ranges c sent.(c))
            in
            write_all sock (line ^ "\n");
            sent.(c) <- sent.(c) + 1
          done)
        socks;
      let readable, _, _ =
        Unix.select (Array.to_list socks) [] [] 5.0
      in
      List.iter
        (fun fd ->
          let c = ref 0 in
          Array.iteri (fun i s -> if s = fd then c := i) socks;
          match Unix.read fd read_buf 0 (Bytes.length read_buf) with
          | 0 -> failwith "bench daemon closed a connection early"
          | len ->
              Buffer.add_subbytes acc.(!c) read_buf 0 len;
              for i = 0 to len - 1 do
                if Bytes.get read_buf i = '\n' then got.(!c) <- got.(!c) + 1
              done)
        readable
    done;
    let dt = Mclock.now () -. t0 in
    Array.iter (fun s -> try Unix.close s with Unix.Unix_error _ -> ()) socks;
    let lines c =
      String.split_on_char '\n' (Buffer.contents acc.(c))
      |> List.filter (fun s -> s <> "")
    in
    (float total /. dt, Array.to_list (Array.init clients lines))
  in
  let shutdown_daemon pid =
    (* an orderly shutdown through a fresh connection *)
    (try
       let sock = connect_retry 20 in
       write_all sock (P.encode_request P.Shutdown ^ "\n");
       let buf = Bytes.create 256 in
       ignore (Unix.read sock buf 0 (Bytes.length buf));
       Unix.close sock
     with _ -> ());
    ignore (Unix.waitpid [] pid)
  in
  let per_client_total = if quick then 1200 else 5000 in
  let best_qps ~clients =
    let per_client = per_client_total / clients in
    let best = ref 0. in
    let responses = ref [] in
    for _ = 1 to 3 do
      let qps, lines = drive ~clients ~per_client in
      if qps > !best then best := qps;
      responses := lines
    done;
    (!best, !responses)
  in
  let pid = spawn_daemon () in
  let qps1, _ = best_qps ~clients:1 in
  let qps4, responses4 = best_qps ~clients:4 in
  (* kill -9, restart, re-drive the 4-client interleaving: per-client
     response streams must be byte-identical and correctly routed *)
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid);
  let pid2 = spawn_daemon () in
  let _, responses4' = best_qps ~clients:4 in
  shutdown_daemon pid2;
  let routed_ok =
    List.for_all2
      (fun c lines ->
        List.length lines = per_client_total / 4
        && List.for_all2
             (fun i line ->
               match P.decode_response line with
               | Ok (P.Answers { id = Some id; rung = P.Exact; _ }) ->
                   id = Printf.sprintf "c%d-%d" c i
               | _ -> false)
             (List.init (List.length lines) Fun.id)
             lines)
      [ 0; 1; 2; 3 ] responses4
  in
  let restart_identical = responses4 = responses4' in
  let qps_ratio = qps4 /. qps1 in
  Printf.printf
    "daemon over %s: 1 client %7.0f req/s   4 clients %7.0f req/s \
     (%.2fx)   routed ok %b   restart byte-identical %b\n"
    socket qps1 qps4 qps_ratio routed_ok restart_identical;
  (* (d) the steady-state allocation contract, whole server path. *)
  let alloc_server =
    match Server.create (config ()) with
    | Ok s -> s
    | Error e -> failwith (Rs_util.Error.to_string e)
  in
  let alloc_k = 192 in
  let rng = Rng.create 0xA110C in
  let alloc_line =
    query ~id:"alloc" ~synopsis:"hist"
      (List.init alloc_k (fun _ ->
           let a = 1 + Rng.int rng n in
           (a, a + Rng.int rng (n - a + 1))))
  in
  ignore (Server.handle_line alloc_server alloc_line);
  ignore (Server.handle_line alloc_server alloc_line);
  let w0 = Gc.minor_words () in
  ignore (Server.handle_line alloc_server alloc_line);
  let alloc_words = Gc.minor_words () -. w0 in
  Server.close alloc_server;
  let alloc_budget = 20_000. +. (200. *. float alloc_k) in
  Printf.printf
    "steady-state exact request (k=%d): %.0f minor words (O(k) budget %.0f)\n"
    alloc_k alloc_words alloc_budget;
  clean ();
  let oc = open_out "BENCH_PR9.json" in
  Printf.fprintf oc "{\n  \"quick\": %b,\n  \"dataset\": %S,\n" quick
    (Dataset.name ds);
  Printf.fprintf oc "  \"recommended_domain_count\": %d,\n" cores;
  Printf.fprintf oc "  \"requests_per_row\": %d,\n" requests;
  Printf.fprintf oc
    "  \"exact_k1\": {\"p50_us\": %.2f},\n" (exact1_p50 *. 1e6);
  Printf.fprintf oc
    "  \"exact_k80\": {\"qps\": %.1f, \"p50_us\": %.2f, \"p99_us\": %.2f},\n"
    exact_qps (exact_p50 *. 1e6) (exact_p99 *. 1e6);
  Printf.fprintf oc
    "  \"bound_k80\": {\"qps\": %.1f, \"p50_us\": %.2f, \"p99_us\": %.2f},\n"
    bound_qps (bound_p50 *. 1e6) (bound_p99 *. 1e6);
  Printf.fprintf oc "  \"rung_p50_ratio\": %.3f,\n" rung_ratio;
  Printf.fprintf oc
    "  \"batch_kernel\": {\"fast_ns_per_range\": %.1f, \"twin_ns_per_range\": \
     %.1f, \"speedup\": %.2f},\n"
    (fast_s *. 1e9 /. float (iters * k))
    (twin_s *. 1e9 /. float (iters * k))
    kernel_speedup;
  Printf.fprintf oc
    "  \"multi_client\": {\"qps_1\": %.1f, \"qps_4\": %.1f, \"ratio\": %.3f, \
     \"routed_ok\": %b, \"restart_byte_identical\": %b},\n"
    qps1 qps4 qps_ratio routed_ok restart_identical;
  Printf.fprintf oc
    "  \"request_alloc\": {\"k\": %d, \"minor_words\": %.0f, \"budget\": %.0f}\n}\n"
    alloc_k alloc_words alloc_budget;
  close_out oc;
  Printf.printf "\n(wrote BENCH_PR9.json)\n";
  let verdicts =
    [
      {
        E.Claims.claim_id = "G9a";
        description =
          "at matched geometry (80 ranges per request) the bound rung's p50 \
           is within 4x of the exact rung's p50 (BENCH_PR7's ~21x compared \
           mismatched geometries)";
        measured =
          Printf.sprintf
            "exact@80 p50 %.1f us, bound@80 p50 %.1f us: %.2fx (exact@1 p50 \
             %.1f us)%s"
            (exact_p50 *. 1e6) (bound_p50 *. 1e6) rung_ratio
            (exact1_p50 *. 1e6)
            (if rung_timeable then ""
             else " (timing waived: sub-microsecond p50)");
        holds =
          ((not rung_timeable) || rung_ratio <= 4.)
          && exact_wrong = 0 && bound_wrong = 0;
      };
      {
        E.Claims.claim_id = "G9b";
        description =
          "the vectorized batch-evaluation kernel beats the per-range \
           estimator twin by >= 1.5x at k=80";
        measured =
          Printf.sprintf "batch %.1f ns/range vs twin %.1f ns/range: %.2fx%s"
            (fast_s *. 1e9 /. float (iters * k))
            (twin_s *. 1e9 /. float (iters * k))
            kernel_speedup
            (if kernel_timeable then ""
             else " (timing waived: baseline under 50ms)");
        holds = (not kernel_timeable) || kernel_speedup >= 1.5;
      };
      {
        E.Claims.claim_id = "G9c";
        description =
          "4 pipelined clients sustain at least the 1-client aggregate qps \
           (timing half, waived below 2 cores); every response is routed to \
           the asking connection and per-client response streams are \
           byte-identical across a kill -9 restart (never waived)";
        measured =
          Printf.sprintf
            "qps 1-client %.0f, 4-client %.0f (%.2fx)%s; routed_ok=%b, \
             restart_identical=%b"
            qps1 qps4 qps_ratio
            (if cores < 2 then
               Printf.sprintf " (timing waived: runtime reports %d core(s))"
                 cores
             else "")
            routed_ok restart_identical;
        holds = (cores < 2 || qps_ratio >= 1.0) && routed_ok && restart_identical;
      };
      {
        E.Claims.claim_id = "G9d";
        description =
          "a steady-state exact request allocates O(k) minor words through \
           the whole server path (never waived; the @serve gate enforces \
           the same budget)";
        measured =
          Printf.sprintf "k=%d: %.0f minor words (budget %.0f)" alloc_k
            alloc_words alloc_budget;
        holds = alloc_words <= alloc_budget;
      };
    ]
  in
  print_string (E.Claims.table (record verdicts))

(* G10: the streaming ingestion path.  Four measurements against a
   WAL-backed stream in a scratch store:

   (a) ingest throughput through the full durability path — every
   batch is CRC-framed, appended and fsynced before the ack, then
   folded into the incremental moment tables (G10a, recorded; the
   >= 5k deltas/s floor is timing-waived when the sweep is
   untimeable).

   (b) restart no-loss determinism: abandon the in-memory stream
   after the last ack, resume from the store (manifest + WAL replay),
   and every value and every per-segment staleness figure must be
   bit-identical to the in-memory state (G10b, never waived).

   (c) the stale-segment accuracy bound: a stale synopsis keeps its
   construction-time boundary estimators while the stored exact
   interior totals track the data, so its worst-case range error can
   exceed the pre-ingest worst case by at most the ingested |delta|
   mass (THEORY: est_stale - truth_new = (est_pre - truth_old) -
   delta_in_boundary_parts).  Measured over every one of the
   n(n+1)/2 ranges (G10c, never waived).

   (d) rebuild determinism: refresh rebuilds the dirty segments and
   the result must be byte-identical to a from-scratch segmented
   batch build of the current data under the same plan and grants
   (G10d, never waived — the PR's acceptance criterion).

   Raw numbers go to BENCH_PR10.json. *)
let stream_bench () =
  section "G10: streaming ingestion (WAL-acked deltas, staleness, merge)";
  let module Stream = Rs_core.Stream in
  let module Store = Rs_core.Store in
  let module Seg = Rs_core.Segmented in
  let module Prefix = Rs_util.Prefix in
  let module Rng = Rs_dist.Rng in
  let module Mclock = Rs_util.Mclock in
  let ds = Dataset.generate "zipf-256" in
  let n = Dataset.n ds in
  let config =
    {
      Stream.default_config with
      Stream.method_name = "a0";
      budget_words = 96;
      segments = 8;
      stale_threshold = 0.;
      options;
    }
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rs_bench_stream10.%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  let clean () = if Sys.file_exists dir then rm_rf dir in
  clean ();
  Unix.mkdir dir 0o755;
  (* (a) ingest throughput through the WAL-acked path. *)
  let store = Store.open_dir dir in
  let t = Stream.create ~config ~store ds in
  let batches = if quick then 48 else 384 in
  let per_batch = 64 in
  let rng = Rng.create 0x57E4 in
  let shadow = Array.copy (Dataset.values ds) in
  let total_mass = ref 0. in
  let t0 = Mclock.now () in
  for _ = 1 to batches do
    let deltas =
      Array.init per_batch (fun _ ->
          let i = 1 + Rng.int rng n in
          let d = Rng.float rng *. 2. in
          (i, d))
    in
    Array.iter
      (fun (i, d) ->
        shadow.(i - 1) <- shadow.(i - 1) +. d;
        total_mass := !total_mass +. Float.abs d)
      deltas;
    ignore (Stream.ingest t deltas)
  done;
  let ingest_s = Mclock.now () -. t0 in
  let deltas_total = batches * per_batch in
  let throughput = float deltas_total /. ingest_s in
  let ingest_timeable = ingest_s >= 0.05 in
  Printf.printf
    "ingest: %d deltas in %d fsynced batches, %.3f s  ->  %.0f deltas/s \
     (%.1f us/batch ack)\n"
    deltas_total batches ingest_s throughput
    (ingest_s *. 1e6 /. float batches);
  (* (b) restart no-loss determinism: resume from the store only. *)
  let live_staleness = Array.copy (Stream.staleness t) in
  let resumed =
    match Stream.resume (Store.open_dir dir) with
    | Ok (Some t') -> t'
    | Ok None -> failwith "stream manifest missing after create"
    | Error e -> failwith (Rs_util.Error.to_string e)
  in
  let bits = Int64.bits_of_float in
  let no_loss = ref true in
  Array.iteri
    (fun j v ->
      if bits v <> bits (Stream.value resumed (j + 1)) then no_loss := false)
    shadow;
  Array.iteri
    (fun i d ->
      if bits d <> bits (Stream.staleness resumed).(i) then no_loss := false)
    live_staleness;
  Printf.printf "restart: %d acked deltas replayed, bit-identical %b\n"
    deltas_total !no_loss;
  (* (c) the stale accuracy bound, measured over every range. *)
  let t2 = Stream.create ~config ds in
  let truth_old = Prefix.create (Stream.data t2) in
  let max_err syn truth =
    let est = Seg.estimator syn in
    let worst = ref 0. in
    for a = 1 to n do
      for b = a to n do
        let e = Float.abs (est ~a ~b -. Prefix.range_sum truth ~a ~b) in
        if e > !worst then worst := e
      done
    done;
    !worst
  in
  let pre_err = max_err (Stream.synopsis t2) truth_old in
  let rng = Rng.create 0xD17 in
  let deltas =
    Array.init 96 (fun _ -> (1 + Rng.int rng n, Rng.float rng *. 4.))
  in
  ignore (Stream.ingest t2 deltas);
  let mass = Array.fold_left (fun acc (_, d) -> acc +. Float.abs d) 0. deltas in
  let truth_new = Prefix.create (Stream.data t2) in
  let stale_err = max_err (Stream.synopsis t2) truth_new in
  (* float-rounding slack only: the inequality itself is exact *)
  let stale_bound = pre_err +. mass +. (1e-9 *. (pre_err +. mass)) in
  let bound_holds = stale_err <= stale_bound in
  ignore (Stream.refresh t2);
  let fresh_err = max_err (Stream.synopsis t2) truth_new in
  Printf.printf
    "stale accuracy: pre-ingest max err %.3f, |delta| mass %.3f, stale max \
     err %.3f (bound %.3f, holds %b), refreshed max err %.3f\n"
    pre_err mass stale_err (pre_err +. mass) bound_holds fresh_err;
  (* (d) rebuild determinism against a from-scratch batch build. *)
  let refresh_t0 = Mclock.now () in
  let r = Stream.refresh ~force:true resumed in
  let refresh_s = Mclock.now () -. refresh_t0 in
  let batch_bytes =
    let cfg = Stream.config resumed in
    let plan = Stream.plan resumed in
    let grants =
      Seg.uniform_split plan ~method_name:cfg.Stream.method_name
        ~budget_words:cfg.Stream.budget_words
    in
    let data = Stream.data resumed in
    let syns =
      Array.mapi
        (fun i (lo, hi) ->
          let slice = Array.sub data (lo - 1) (hi - lo + 1) in
          let sds =
            Dataset.of_floats
              ~name:(Printf.sprintf "%s.seg%d" cfg.Stream.entry_prefix i)
              slice
          in
          Builder.build sds ~method_name:cfg.Stream.method_name
            ~budget_words:grants.(i))
        plan.Seg.bounds
    in
    Seg.to_string (Seg.make (Stream.dataset resumed) plan syns)
  in
  let rebuild_identical =
    Seg.to_string (Stream.synopsis resumed) = batch_bytes
  in
  Printf.printf
    "refresh: %d segments rebuilt in %.3f s, byte-identical to the \
     from-scratch batch build %b\n"
    (List.length r.Stream.rebuilt)
    refresh_s rebuild_identical;
  clean ();
  let oc = open_out "BENCH_PR10.json" in
  Printf.fprintf oc "{\n  \"quick\": %b,\n  \"dataset\": %S,\n" quick
    (Dataset.name ds);
  Printf.fprintf oc
    "  \"ingest\": {\"deltas\": %d, \"batches\": %d, \"seconds\": %.4f, \
     \"deltas_per_s\": %.1f},\n"
    deltas_total batches ingest_s throughput;
  Printf.fprintf oc "  \"restart_no_loss\": %b,\n" !no_loss;
  Printf.fprintf oc
    "  \"stale_accuracy\": {\"pre_err\": %.4f, \"delta_mass\": %.4f, \
     \"stale_err\": %.4f, \"fresh_err\": %.4f, \"bound_holds\": %b},\n"
    pre_err mass stale_err fresh_err bound_holds;
  Printf.fprintf oc
    "  \"rebuild\": {\"segments\": %d, \"seconds\": %.4f, \"byte_identical\": \
     %b}\n}\n"
    (List.length r.Stream.rebuilt)
    refresh_s rebuild_identical;
  close_out oc;
  Printf.printf "\n(wrote BENCH_PR10.json)\n";
  let verdicts =
    [
      {
        E.Claims.claim_id = "G10a";
        description =
          "the WAL-acked ingest path (CRC frame + fsync before ack + \
           incremental moment fold) sustains >= 5k deltas/s (timing-waived \
           when the sweep is untimeable)";
        measured =
          Printf.sprintf "%d deltas in %.3f s: %.0f deltas/s%s" deltas_total
            ingest_s throughput
            (if ingest_timeable then ""
             else " (timing waived: sweep under 50ms)");
        holds = (not ingest_timeable) || throughput >= 5000.;
      };
      {
        E.Claims.claim_id = "G10b";
        description =
          "abandoning the in-memory stream and resuming from the store \
           (manifest + WAL replay) loses no acked delta: values and \
           per-segment staleness bit-identical (never waived)";
        measured =
          Printf.sprintf "%d acked deltas, bit-identical=%b" deltas_total
            !no_loss;
        holds = !no_loss;
      };
      {
        E.Claims.claim_id = "G10c";
        description =
          "a stale segment's worst-case range error exceeds the pre-ingest \
           worst case by at most the ingested |delta| mass, over all \
           n(n+1)/2 ranges (never waived)";
        measured =
          Printf.sprintf
            "pre %.3f + mass %.3f >= stale %.3f (refreshed: %.3f)" pre_err
            mass stale_err fresh_err;
        holds = bound_holds;
      };
      {
        E.Claims.claim_id = "G10d";
        description =
          "refreshed segments are byte-identical to a from-scratch \
           segmented batch build of the current data under the same plan \
           and grants (never waived)";
        measured =
          Printf.sprintf "%d segments rebuilt, byte_identical=%b"
            (List.length r.Stream.rebuilt)
            rebuild_identical;
        holds = rebuild_identical;
      };
    ]
  in
  print_string (E.Claims.table (record verdicts))

(* P8: the unboxed Bigarray DP kernels and the pool dispatch cutover.
   Three (kernel, jobs) configurations of the exact OPT-A DP, sharing
   one UB seed (best-of-3 wall times): the fused Fast kernel vs the
   iter+update_min Reference baseline at jobs=1, and Fast at jobs=4
   under the measured cutover.  Equality — SSE bits, state counts,
   snapshot bytes across kernels, and a cross-jobs cross-kernel
   resume — is asserted unconditionally; the two timing halves carry
   the usual hardware waivers (a sub-50ms baseline is untimeable, and
   a sub-2-core machine cannot show a parallel win).  An extra
   instrumented jobs=4 pass collects the pool.chunk_span histogram —
   the dispatch-granularity evidence behind the cutover.  Raw numbers
   go to BENCH_PR8.json. *)
let kernel_bench () =
  section "P8: unboxed DP kernels (fast vs reference) + pool cutover";
  let module Opt_a = Rs_histogram.Opt_a in
  let module Metrics = Rs_util.Metrics in
  let module Governor = Rs_util.Governor in
  let cores = Domain.recommended_domain_count () in
  let max_states = if quick then 2_000_000 else 60_000_000 in
  let buckets = if quick then 6 else 8 in
  let rec sweep_at x =
    try (x, E.Scalability.run_kernels ~buckets ~max_states ~x ())
    with Opt_a.Too_many_states _ when x < 1024 -> sweep_at (x * 4)
  in
  let x, rows = sweep_at (if quick then 32 else 1) in
  if x > 1 then
    Printf.printf "(exact DP on x=%d-rounded data to fit max_states=%d)\n\n" x
      max_states;
  print_string (E.Scalability.kernel_table rows);
  let find kernel jobs =
    match
      List.find_opt
        (fun (r : E.Scalability.kernel_row) ->
          r.E.Scalability.k_kernel = kernel && r.E.Scalability.k_jobs = jobs)
        rows
    with
    | Some r -> r
    | None -> failwith ("P8: missing row " ^ kernel)
  in
  let fast1 = find "fast" 1 in
  let ref1 = find "reference" 1 in
  let fast4 = find "fast" 4 in
  let results_identical =
    List.for_all
      (fun (r : E.Scalability.kernel_row) ->
        Float.equal r.E.Scalability.k_sse fast1.E.Scalability.k_sse
        && r.E.Scalability.k_states = fast1.E.Scalability.k_states)
      rows
  in
  let kernel_speedup =
    if fast1.E.Scalability.k_seconds > 0. then
      ref1.E.Scalability.k_seconds /. fast1.E.Scalability.k_seconds
    else 1.
  in
  let jobs4_speedup =
    if fast4.E.Scalability.k_seconds > 0. then
      fast1.E.Scalability.k_seconds /. fast4.E.Scalability.k_seconds
    else 1.
  in
  (* chunk_span evidence: one instrumented (untimed) jobs=4 pass. *)
  let chunks, span_buckets, span_max =
    Metrics.reset ();
    Metrics.enable ();
    ignore
      (E.Scalability.run_kernels ~buckets ~max_states ~x ~repeats:1
         ~configs:[ (Opt_a.Fast, 4) ] ());
    let report = Metrics.report () in
    Metrics.disable ();
    Metrics.reset ();
    let chunks =
      Option.value ~default:0
        (List.assoc_opt "pool.chunks" report.Metrics.r_counters)
    in
    match List.assoc_opt "pool.chunk_span" report.Metrics.r_histograms with
    | Some h -> (chunks, h.Metrics.h_buckets, h.Metrics.h_max)
    | None -> (chunks, [], 0.)
  in
  Printf.printf
    "\npool dispatch granularity at jobs=4: %d chunk barriers, widest span \
     %.0f cells\n"
    chunks span_max;
  (* snapshot bytes across kernels + cross-jobs cross-kernel resume, on
     a small governed instance (the heavyweight sweeps live in @fault). *)
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let p_small = Dataset.prefix (Dataset.generate "zipf-64") in
  let sb = 4 in
  (* pin key_cap so the governed UB-seeding pass is skipped and every
     poll lands in the exact DP, where snapshots exist *)
  let kc = 100_000 in
  let base = Opt_a.build_exact ~key_cap:kc p_small ~buckets:sb in
  let snapshots_identical = ref true in
  let resume_identical = ref true in
  let interruptions = ref 0 in
  List.iter
    (fun budget ->
      let snap kernel =
        let path = Filename.temp_file "rs_p8" ".ckpt" in
        Sys.remove path;
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
          (fun () ->
            let governor =
              Governor.create ~deadline_mode:Governor.Snapshot
                ~poll_budget:budget ()
            in
            match
              Opt_a.build_exact ~kernel ~key_cap:kc ~governor
                ~checkpoint_path:path p_small ~buckets:sb
            with
            | _ -> None
            | exception Governor.Interrupted { checkpoint; _ } ->
                let bytes = read_file path in
                (* finish the interrupted run with the other kernel at
                   jobs=4 — resume is cross-kernel and cross-jobs *)
                let other =
                  if kernel = Opt_a.Fast then Opt_a.Reference else Opt_a.Fast
                in
                let r =
                  Opt_a.build_exact ~kernel:other ~key_cap:kc ~jobs:4
                    ~resume_from:checkpoint p_small ~buckets:sb
                in
                if
                  not
                    (Float.equal r.Opt_a.sse base.Opt_a.sse
                    && r.Opt_a.states = base.Opt_a.states)
                then resume_identical := false;
                Some bytes)
      in
      match (snap Opt_a.Fast, snap Opt_a.Reference) with
      | Some a, Some b ->
          incr interruptions;
          if a <> b then snapshots_identical := false
      | None, None -> ()
      | _ -> snapshots_identical := false)
    [ 2; 5; 9; 14 ];
  let snapshots_identical = !snapshots_identical && !interruptions > 0 in
  let resume_identical = !resume_identical && !interruptions > 0 in
  let oc = open_out "BENCH_PR8.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"quick\": %b,\n" quick;
  Printf.fprintf oc "  \"recommended_domain_count\": %d,\n" cores;
  Printf.fprintf oc
    "  \"config\": {\"dataset\": \"paper\", \"x\": %d, \"buckets\": %d, \
     \"max_states\": %d, \"repeats\": 3},\n"
    x buckets max_states;
  Printf.fprintf oc "  \"kernels\": [\n";
  let last_i = List.length rows - 1 in
  List.iteri
    (fun i (r : E.Scalability.kernel_row) ->
      Printf.fprintf oc
        "    {\"kernel\": %S, \"jobs\": %d, \"seconds_best3\": %.6f, \"sse\": \
         %.17g, \"states\": %d}%s\n"
        r.E.Scalability.k_kernel r.E.Scalability.k_jobs
        r.E.Scalability.k_seconds r.E.Scalability.k_sse
        r.E.Scalability.k_states
        (if i = last_i then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"speedup_fast_vs_reference_jobs1\": %.4f,\n"
    kernel_speedup;
  Printf.fprintf oc "  \"speedup_jobs4_vs_jobs1\": %.4f,\n" jobs4_speedup;
  Printf.fprintf oc
    "  \"equality\": {\"sse_and_states\": %b, \"snapshot_bytes\": %b, \
     \"cross_jobs_cross_kernel_resume\": %b, \"interruptions\": %d},\n"
    results_identical snapshots_identical resume_identical !interruptions;
  Printf.fprintf oc "  \"chunk_span\": {\"chunks\": %d, \"max\": %.0f, \
                     \"buckets\": [" chunks span_max;
  let last_b = List.length span_buckets - 1 in
  List.iteri
    (fun i (le, count) ->
      Printf.fprintf oc "{\"le\": %s, \"count\": %d}%s"
        (if le = infinity then "\"inf\"" else Printf.sprintf "%.0f" le)
        count
        (if i = last_b then "" else ", "))
    span_buckets;
  Printf.fprintf oc "]}\n}\n";
  close_out oc;
  Printf.printf "\n(wrote BENCH_PR8.json)\n";
  let timeable = ref1.E.Scalability.k_seconds >= 0.05 in
  let verdicts =
    [
      {
        E.Claims.claim_id = "P8a";
        description =
          "the fused unboxed kernel beats the reference formulation by >= \
           1.5x on the exact OPT-A DP at jobs=1";
        measured =
          Printf.sprintf "fast %.3fs vs reference %.3fs: %.2fx%s"
            fast1.E.Scalability.k_seconds ref1.E.Scalability.k_seconds
            kernel_speedup
            (if timeable then ""
             else " (timing waived: baseline under 50ms)");
        holds = (not timeable) || kernel_speedup >= 1.5;
      };
      {
        E.Claims.claim_id = "P8b";
        description =
          "kernels and job counts are bit-identical: same SSE bits and state \
           counts, byte-identical snapshots, and an interrupted run resumes \
           across kernel and job count (never waived)";
        measured =
          Printf.sprintf
            "sse/states identical=%b, snapshot bytes identical=%b, \
             cross-resume identical=%b (%d interruptions)"
            results_identical snapshots_identical resume_identical
            !interruptions;
        holds = results_identical && snapshots_identical && resume_identical;
      };
      {
        E.Claims.claim_id = "P8c";
        description =
          "under the dispatch cutover, jobs=4 is no slower than jobs=1 on \
           the same kernel (the BENCH_PR3 regression, fixed)";
        measured =
          Printf.sprintf "jobs=4 %.3fs vs jobs=1 %.3fs: %.2fx (%d chunk \
                          barriers, widest span %.0f)%s"
            fast4.E.Scalability.k_seconds fast1.E.Scalability.k_seconds
            jobs4_speedup chunks span_max
            (if cores < 2 then
               Printf.sprintf " (timing waived: runtime reports %d core(s))"
                 cores
             else "");
        holds = cores < 2 || jobs4_speedup >= 1.0;
      };
    ]
  in
  print_string (E.Claims.table (record verdicts))

(* --- Bechamel timing benchmarks: one Test.make per table --- *)

let bechamel_tests () =
  let open Bechamel in
  let ds = Dataset.paper () in
  let p = Dataset.prefix ds in
  let data = Dataset.values ds in
  let ds511 = Dataset.generate "zipf-511" in
  let p511 = Dataset.prefix ds511 in
  let equi16 = Rs_histogram.Baselines.equi_width p ~buckets:16 in
  [
    (* F1's workhorse: the O(n²B) bucket DP (A0 costs). *)
    Test.make ~name:"F1/a0-dp n=127 B=12"
      (Staged.stage (fun () -> ignore (Rs_histogram.A0.build p ~buckets:12)));
    (* C1: the POINT-OPT baseline construction. *)
    Test.make ~name:"C1/point-opt n=127 B=12"
      (Staged.stage (fun () -> ignore (Rs_histogram.Vopt.build p ~buckets:12)));
    (* C2: SAP1's DP with regression costs. *)
    Test.make ~name:"C2/sap1 n=127 B=9"
      (Staged.stage (fun () -> ignore (Rs_histogram.Sap1.build p ~buckets:9)));
    (* C3: SAP0's DP. *)
    Test.make ~name:"C3/sap0 n=127 B=16"
      (Staged.stage (fun () -> ignore (Rs_histogram.Sap0.build p ~buckets:16)));
    (* C4: normal equations + SPD solve of the reopt step. *)
    Test.make ~name:"C4/reopt n=127 B=16"
      (Staged.stage (fun () -> ignore (Rs_histogram.Reopt.apply p equi16)));
    (* C5: the near-linear range-optimal wavelet selection (Thm 9). *)
    Test.make ~name:"C5/wave-range-opt n=127 B=24"
      (Staged.stage (fun () ->
           ignore (Rs_wavelet.Synopsis.range_optimal data ~b:24)));
    (* T4: one OPT-A-ROUNDED run at a coarse grid. *)
    Test.make ~name:"T4/opt-a-rounded x=64 B=6"
      (Staged.stage (fun () ->
           ignore
             (Rs_histogram.Opt_a.build_rounded ~max_states:5_000_000 p
                ~buckets:6 ~x:64)));
    (* S1: a polynomial construction at the larger domain. *)
    Test.make ~name:"S1/sap0 n=511 B=10"
      (Staged.stage (fun () -> ignore (Rs_histogram.Sap0.build p511 ~buckets:10)));
  ]

let run_bechamel () =
  let open Bechamel in
  section "Bechamel construction-time benchmarks";
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let quota = if quick then Time.second 0.2 else Time.second 1.0 in
  let cfg = Benchmark.cfg ~limit:200 ~quota ~stabilize:false () in
  let grouped = Test.make_grouped ~name:"tables" (bechamel_tests ()) in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ ns ] ->
          if ns >= 1e9 then Printf.printf "%-42s %10.3f s/run\n" name (ns /. 1e9)
          else if ns >= 1e6 then
            Printf.printf "%-42s %10.3f ms/run\n" name (ns /. 1e6)
          else Printf.printf "%-42s %10.3f us/run\n" name (ns /. 1e3)
      | _ -> Printf.printf "%-42s (no estimate)\n" name)
    rows

let () =
  Rs_util.Logging.setup_from_env ();
  quality_tables ();
  durability_check ();
  jobs_sweep ();
  engine_bench ();
  obs_overhead ();
  segmented_bench ();
  serve_bench ();
  serve_batch_bench ();
  stream_bench ();
  kernel_bench ();
  if not no_bechamel then run_bechamel ();
  match List.rev !failed_claims with
  | [] -> Printf.printf "\ndone.\n"
  | failed ->
      Printf.printf "\nFAILED: %d claim verdict(s) did not hold:\n"
        (List.length failed);
      List.iter
        (fun (v : E.Claims.verdict) ->
          Printf.printf "  %-4s %s\n       measured: %s\n" v.E.Claims.claim_id
            v.E.Claims.description v.E.Claims.measured)
        failed;
      exit 1
