module Dataset = Rs_core.Dataset
module Builder = Rs_core.Builder
module Synopsis = Rs_core.Synopsis

let tmp_file suffix =
  Filename.temp_file "rs_core_test" suffix

let test_dataset_of_ints () =
  let ds = Dataset.of_ints ~name:"t" [| 1; 2; 3 |] in
  Alcotest.(check int) "n" 3 (Dataset.n ds);
  Helpers.check_close "total" 6. (Dataset.total ds);
  Alcotest.(check bool) "integral" true (Dataset.is_integral ds);
  Alcotest.(check string) "name" "t" (Dataset.name ds)

let test_dataset_rejects_negative () =
  try
    ignore (Dataset.of_floats [| 1.; -2. |]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_dataset_save_load_roundtrip () =
  let ds = Dataset.of_floats ~name:"rt" [| 1.; 2.5; 0.; 42. |] in
  let path = tmp_file ".txt" in
  Dataset.save ds path;
  let ds' = Dataset.load path in
  Sys.remove path;
  Alcotest.(check bool) "values" true
    (Rs_util.Float_cmp.close_arrays (Dataset.values ds) (Dataset.values ds'))

let test_dataset_load_comments_and_blanks () =
  let path = tmp_file ".txt" in
  let oc = open_out path in
  output_string oc "# header\n10\n\n  20 \n# trailing\n30\n";
  close_out oc;
  let ds = Dataset.load path in
  Sys.remove path;
  Alcotest.(check int) "n" 3 (Dataset.n ds);
  Helpers.check_close "total" 60. (Dataset.total ds)

let test_dataset_load_rejects_garbage () =
  let path = tmp_file ".txt" in
  let oc = open_out path in
  output_string oc "10\nnot-a-number\n";
  close_out oc;
  let r = try ignore (Dataset.load path); false with Invalid_argument _ -> true in
  Sys.remove path;
  Alcotest.(check bool) "raises" true r

let test_dataset_generate () =
  let ds = Dataset.generate "zipf-32" in
  Alcotest.(check int) "n" 32 (Dataset.n ds);
  try
    ignore (Dataset.generate "nope");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let small_ds = lazy (Dataset.generate "zipf-32")

let test_builder_all_methods_run () =
  let ds = Lazy.force small_ds in
  List.iter
    (fun m ->
      let s = Builder.build ds ~method_name:m ~budget_words:12 in
      (* Storage within budget (naive uses a fixed 2 words). *)
      Alcotest.(check bool)
        (m ^ " within budget")
        true
        (Synopsis.storage_words s <= 12);
      (* Estimates are finite everywhere. *)
      for a = 1 to Dataset.n ds do
        for b = a to Dataset.n ds do
          if not (Float.is_finite (Synopsis.estimate s ~a ~b)) then
            Alcotest.failf "%s produced a non-finite estimate" m
        done
      done;
      ignore (Synopsis.describe s))
    Builder.methods

let test_builder_unknown_method () =
  (try
     ignore
       (Builder.build (Lazy.force small_ds) ~method_name:"bogus" ~budget_words:8);
     Alcotest.fail "expected Rs_error (Unknown_method _)"
   with Rs_util.Error.Rs_error (Rs_util.Error.Unknown_method { name; _ }) ->
     Alcotest.(check string) "offender named" "bogus" name);
  match
    Builder.build_result (Lazy.force small_ds) ~method_name:"bogus"
      ~budget_words:8
  with
  | Error (Rs_util.Error.Unknown_method _) -> ()
  | Ok _ -> Alcotest.fail "expected Error (Unknown_method _)"
  | Error e -> Alcotest.failf "wrong error: %s" (Rs_util.Error.to_string e)

let test_builder_opt_a_requires_ints () =
  let ds = Dataset.of_floats [| 1.5; 2.; 3. |] in
  try
    ignore (Builder.build ds ~method_name:"opt-a" ~budget_words:4);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_builder_units () =
  Alcotest.(check int) "avg" 6
    (Builder.units_for_budget ~method_name:"opt-a" ~budget_words:12);
  Alcotest.(check int) "sap0" 4
    (Builder.units_for_budget ~method_name:"sap0" ~budget_words:12);
  Alcotest.(check int) "sap1" 2
    (Builder.units_for_budget ~method_name:"sap1" ~budget_words:12);
  Alcotest.(check int) "at least one" 1
    (Builder.units_for_budget ~method_name:"sap1" ~budget_words:3)

let test_synopsis_sse_consistent () =
  (* The wavelet prefix-form fast path agrees with brute force for both
     shared- and two-sided synopses. *)
  let ds = Lazy.force small_ds in
  let p = Dataset.prefix ds in
  List.iter
    (fun m ->
      let s = Builder.build ds ~method_name:m ~budget_words:10 in
      Helpers.check_close ~tol:1e-6 (m ^ " sse")
        (Rs_query.Error.sse_all_ranges p (Synopsis.estimator s))
        (Synopsis.sse ds s))
    [ "topbb"; "wave-range-opt"; "wave-aa"; "sap0"; "opt-a" ]

let test_synopsis_point () =
  let ds = Dataset.of_ints [| 10; 20; 30 |] in
  let s = Builder.build ds ~method_name:"naive" ~budget_words:2 in
  Helpers.check_close "point" 20. (Synopsis.point s ~i:2);
  Alcotest.(check int) "domain size" 3 (Synopsis.domain_size s)

let test_synopsis_quantile () =
  (* An exact synopsis (one bucket per point) reports true quantiles. *)
  let data = [| 10; 10; 10; 10; 10; 10; 10; 10; 10; 10 |] in
  let ds = Dataset.of_ints data in
  let s = Builder.build ds ~method_name:"sap0" ~budget_words:30 in
  Alcotest.(check int) "median" 5 (Synopsis.quantile s ~q:0.5);
  Alcotest.(check int) "q=0.1" 1 (Synopsis.quantile s ~q:0.1);
  Alcotest.(check int) "q=1" 10 (Synopsis.quantile s ~q:1.);
  Alcotest.(check int) "q clamped" 10 (Synopsis.quantile s ~q:7.);
  (* A head-heavy distribution puts the median at the first key. *)
  let ds2 = Dataset.of_ints [| 90; 2; 2; 2; 2; 2 |] in
  let s2 = Builder.build ds2 ~method_name:"opt-a" ~budget_words:12 in
  Alcotest.(check int) "head median" 1 (Synopsis.quantile s2 ~q:0.5);
  (* Approximate quantiles stay near truth for a good synopsis. *)
  let big = Dataset.generate "zipf-128" in
  let s3 = Builder.build big ~method_name:"a0" ~budget_words:32 in
  let p = Dataset.prefix big in
  let truth q =
    let target = q *. Rs_util.Prefix.total p in
    let rec go b = if Rs_util.Prefix.prefix p b >= target then b else go (b + 1) in
    go 1
  in
  List.iter
    (fun q ->
      let approx = Synopsis.quantile s3 ~q in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f close" q)
        true
        (abs (approx - truth q) <= 4))
    [ 0.25; 0.5; 0.9 ]

let test_builder_budget_monotone_quality () =
  (* More budget never hurts for the optimal constructions. *)
  let ds = Lazy.force small_ds in
  List.iter
    (fun m ->
      let prev = ref Float.infinity in
      List.iter
        (fun budget ->
          let s = Builder.build ds ~method_name:m ~budget_words:budget in
          let e = Synopsis.sse ds s in
          Alcotest.(check bool)
            (Printf.sprintf "%s monotone at %dw" m budget)
            true (e <= !prev +. 1e-6);
          prev := e)
        [ 6; 12; 24; 48 ])
    [ "sap0"; "sap1"; "opt-a"; "wave-range-opt" ]

(* --- codec --- *)

module Codec = Rs_core.Codec

let test_codec_roundtrip_all_methods () =
  let ds = Lazy.force small_ds in
  let n = Dataset.n ds in
  List.iter
    (fun m ->
      let s = Builder.build ds ~method_name:m ~budget_words:10 in
      let s' = Codec.of_string (Codec.to_string s) in
      Alcotest.(check string) (m ^ " name") (Synopsis.name s) (Synopsis.name s');
      Alcotest.(check int)
        (m ^ " storage")
        (Synopsis.storage_words s)
        (Synopsis.storage_words s');
      (* Bit-exact estimates everywhere. *)
      for a = 1 to n do
        for b = a to n do
          let e = Synopsis.estimate s ~a ~b and e' = Synopsis.estimate s' ~a ~b in
          if e <> e' then
            Alcotest.failf "%s: estimate differs after roundtrip at (%d,%d)" m a b
        done
      done)
    Builder.methods

let test_codec_file_roundtrip () =
  let ds = Lazy.force small_ds in
  let s = Builder.build ds ~method_name:"sap1" ~budget_words:15 in
  let path = tmp_file ".syn" in
  Codec.save s path;
  let s' = Codec.load path in
  Sys.remove path;
  Helpers.check_close "estimate preserved"
    (Synopsis.estimate s ~a:3 ~b:17)
    (Synopsis.estimate s' ~a:3 ~b:17)

let test_codec_rejects_garbage () =
  let reject what s =
    try
      ignore (Codec.of_string s);
      Alcotest.fail ("expected Invalid_argument for " ^ what)
    with Invalid_argument _ -> ()
  in
  reject "empty" "";
  reject "wrong magic" "not-a-synopsis 1\n";
  reject "future version" "range-synopsis 99\nkind histogram\n";
  reject "unknown kind" "range-synopsis 1\nkind sketch\n";
  reject "bad repr"
    "range-synopsis 1\nkind histogram\nname x\nn 4\nrounded false\nrights 4\nrepr nope\n";
  reject "bad float"
    "range-synopsis 1\nkind histogram\nname x\nn 4\nrounded false\nrights 4\nrepr avg\nvalues abc\n"

let test_codec_sap0_explicit_roundtrip () =
  (* The workload-weighted representation is not in the Builder
     registry, so cover its codec arm directly. *)
  let ds = Lazy.force small_ds in
  let p = Dataset.prefix ds in
  let n = Dataset.n ds in
  let weights =
    Rs_histogram.Wsap0.recency_weights ~n ~half_life:(float_of_int n /. 6.)
  in
  let h = Rs_histogram.Wsap0.build p weights ~buckets:4 in
  let s = Synopsis.Histogram h in
  let s' = Codec.of_string (Codec.to_string s) in
  Alcotest.(check int) "storage" (Synopsis.storage_words s) (Synopsis.storage_words s');
  for a = 1 to n do
    for b = a to n do
      if Synopsis.estimate s ~a ~b <> Synopsis.estimate s' ~a ~b then
        Alcotest.failf "sap0x roundtrip differs at (%d,%d)" a b
    done
  done

let test_codec_rounded_flag_survives () =
  let ds = Lazy.force small_ds in
  let p = Dataset.prefix ds in
  let h =
    Rs_histogram.Summaries.avg_histogram ~rounded:true ~name:"r" p
      (Rs_histogram.Bucket.equi_width ~n:(Dataset.n ds) ~buckets:3)
  in
  let s' = Codec.of_string (Codec.to_string (Synopsis.Histogram h)) in
  match s' with
  | Synopsis.Histogram h' ->
      Alcotest.(check bool) "rounded" true (Rs_histogram.Histogram.rounded h')
  | Synopsis.Wavelet _ -> Alcotest.fail "kind changed"

let () =
  Alcotest.run "core"
    [
      ( "dataset",
        [
          Alcotest.test_case "of_ints" `Quick test_dataset_of_ints;
          Alcotest.test_case "rejects negative" `Quick test_dataset_rejects_negative;
          Alcotest.test_case "save/load" `Quick test_dataset_save_load_roundtrip;
          Alcotest.test_case "comments" `Quick test_dataset_load_comments_and_blanks;
          Alcotest.test_case "garbage" `Quick test_dataset_load_rejects_garbage;
          Alcotest.test_case "generate" `Quick test_dataset_generate;
        ] );
      ( "builder",
        [
          Alcotest.test_case "all methods" `Quick test_builder_all_methods_run;
          Alcotest.test_case "unknown method" `Quick test_builder_unknown_method;
          Alcotest.test_case "opt-a needs ints" `Quick test_builder_opt_a_requires_ints;
          Alcotest.test_case "units" `Quick test_builder_units;
          Alcotest.test_case "budget monotone" `Quick test_builder_budget_monotone_quality;
        ] );
      ( "synopsis",
        [
          Alcotest.test_case "sse consistent" `Quick test_synopsis_sse_consistent;
          Alcotest.test_case "point" `Quick test_synopsis_point;
          Alcotest.test_case "quantile" `Quick test_synopsis_quantile;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip all methods" `Quick test_codec_roundtrip_all_methods;
          Alcotest.test_case "file roundtrip" `Quick test_codec_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
          Alcotest.test_case "sap0x roundtrip" `Quick test_codec_sap0_explicit_roundtrip;
          Alcotest.test_case "rounded flag" `Quick test_codec_rounded_flag_survives;
        ] );
    ]
