(* The level-parallel DP engines (PR 3): the Rs_util.Pool fork-join
   primitive itself, bit-identical Dp/Opt_a results across job counts
   (bucketing, SSE, state counts), byte-identical snapshots at matching
   positions, and cross-jobs kill-and-resume (a snapshot taken at
   jobs=4 resumes at jobs=1 and vice versa). *)

module Pool = Rs_util.Pool
module Governor = Rs_util.Governor
module Prefix = Rs_util.Prefix
module Dp = Rs_histogram.Dp
module Opt_a = Rs_histogram.Opt_a
module Bucket = Rs_histogram.Bucket
module Cost = Rs_histogram.Cost
module Histogram = Rs_histogram.Histogram
module Rng = Rs_dist.Rng

let jobs_sweep = [ 1; 2; 4 ]

let with_tmp suffix f =
  let path = Filename.temp_file "rs_par" suffix in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      let tmp = path ^ ".tmp" in
      if Sys.file_exists tmp then Sys.remove tmp)
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- the pool itself --- *)

let test_pool_runs_every_index_once () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          List.iter
            (fun (lo, hi) ->
              let width = max 0 (hi - lo + 1) in
              let marks = Array.init width (fun _ -> Atomic.make 0) in
              Pool.run pool ~lo ~hi (fun i -> Atomic.incr marks.(i - lo));
              Array.iteri
                (fun off m ->
                  Alcotest.(check int)
                    (Printf.sprintf "jobs=%d index %d" jobs (lo + off))
                    1 (Atomic.get m))
                marks)
            [ (0, 0); (0, 99); (5, 11); (3, 200) ]))
    jobs_sweep

let test_pool_empty_range_is_noop () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let ran = ref false in
      Pool.run pool ~lo:10 ~hi:9 (fun _ -> ran := true);
      Alcotest.(check bool) "hi < lo runs nothing" false !ran)

let test_pool_reraises_smallest_failing_index () =
  (* Indices are claimed in ascending order off one atomic counter, so
     index 3 always executes even if index 7 poisons the pool first —
     and the smallest failure is what surfaces, deterministically. *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          match
            Pool.run pool ~lo:0 ~hi:20 (fun i ->
                if i = 3 || i = 7 then failwith (string_of_int i))
          with
          | () -> Alcotest.failf "jobs=%d: must raise" jobs
          | exception Failure got ->
              Alcotest.(check string)
                (Printf.sprintf "jobs=%d smallest index" jobs)
                "3" got))
    jobs_sweep

let test_pool_is_reusable_across_runs () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let acc = Array.make 50 0 in
      for round = 1 to 5 do
        Pool.run pool ~lo:0 ~hi:49 (fun i -> acc.(i) <- acc.(i) + round)
      done;
      Array.iteri
        (fun i v -> Alcotest.(check int) (Printf.sprintf "cell %d" i) 15 v)
        acc)

let test_pool_survives_a_failed_run () =
  Pool.with_pool ~jobs:2 (fun pool ->
      (match Pool.run pool ~lo:0 ~hi:9 (fun _ -> failwith "boom") with
      | () -> Alcotest.fail "must raise"
      | exception Failure _ -> ());
      (* The pool is still serviceable after a poisoned run. *)
      let hits = Atomic.make 0 in
      Pool.run pool ~lo:0 ~hi:9 (fun _ -> Atomic.incr hits);
      Alcotest.(check int) "next run completes" 10 (Atomic.get hits))

let test_with_pool_shuts_down_on_exception () =
  match Pool.with_pool ~jobs:4 (fun _ -> failwith "escape") with
  | () -> Alcotest.fail "must propagate"
  | exception Failure msg -> Alcotest.(check string) "propagated" "escape" msg

(* --- dispatch cutover: scheduling moves, nothing else --- *)

let dispatch_sweep = [ Pool.Auto; Pool.Parallel; Pool.Sequential ]

let dispatch_name = function
  | Pool.Auto -> "auto"
  | Pool.Parallel -> "parallel"
  | Pool.Sequential -> "sequential"

let test_pool_dispatch_modes_agree () =
  (* Every contract the dispatched path promises — each index exactly
     once, reuse across runs, smallest failing index — holds verbatim
     on the inline path and in auto mode. *)
  List.iter
    (fun dispatch ->
      let name fmt = Printf.sprintf ("%s: " ^^ fmt) (dispatch_name dispatch) in
      Pool.with_pool ~dispatch ~jobs:4 (fun pool ->
          let marks = Array.init 100 (fun _ -> Atomic.make 0) in
          for _round = 1 to 2 do
            Pool.run pool ~lo:0 ~hi:99 (fun i -> Atomic.incr marks.(i))
          done;
          Array.iteri
            (fun i m ->
              Alcotest.(check int) (name "index %d" i) 2 (Atomic.get m))
            marks;
          (match
             Pool.run pool ~lo:0 ~hi:20 (fun i ->
                 if i = 3 || i = 7 then failwith (string_of_int i))
           with
          | () -> Alcotest.failf "%s: must raise" (dispatch_name dispatch)
          | exception Failure got ->
              Alcotest.(check string) (name "smallest index") "3" got);
          (* Still serviceable after the poisoned run. *)
          let hits = Atomic.make 0 in
          Pool.run pool ~lo:0 ~hi:9 (fun _ -> Atomic.incr hits);
          Alcotest.(check int) (name "after failure") 10 (Atomic.get hits)))
    dispatch_sweep

let test_pool_sequential_dispatch_stays_on_coordinator () =
  let self = Domain.self () in
  Pool.with_pool ~dispatch:Pool.Sequential ~jobs:4 (fun pool ->
      let strayed = Atomic.make false in
      Pool.run pool ~lo:0 ~hi:499 (fun _ ->
          if Domain.self () <> self then Atomic.set strayed true);
      Alcotest.(check bool) "every index inline" false (Atomic.get strayed))

let test_pool_auto_pins_inline_on_one_core () =
  (* The BENCH_PR3 fix: on a sub-2-core machine every chunk pays the
     worker handshake for zero parallel speedup, so auto mode never
     dispatches.  Only observable where the gate actually fires. *)
  if Domain.recommended_domain_count () < 2 then begin
    let self = Domain.self () in
    Pool.with_pool ~dispatch:Pool.Auto ~jobs:4 (fun pool ->
        let strayed = Atomic.make false in
        Pool.run pool ~lo:0 ~hi:499 (fun _ ->
            if Domain.self () <> self then Atomic.set strayed true);
        Alcotest.(check bool) "one core: auto stays inline" false
          (Atomic.get strayed))
  end

let test_pool_parallel_dispatch_reaches_workers () =
  (* [Parallel] must keep the pre-cutover behavior: the workers do
     claim indices.  Hold each body briefly so the coordinator cannot
     drain the whole range before a worker wakes. *)
  let self = Domain.self () in
  Pool.with_pool ~dispatch:Pool.Parallel ~jobs:4 (fun pool ->
      let worker_ran = Atomic.make false in
      Pool.run pool ~lo:0 ~hi:63 (fun _ ->
          if Domain.self () <> self then Atomic.set worker_ran true
          else Unix.sleepf 0.001);
      Alcotest.(check bool) "a worker claimed an index" true
        (Atomic.get worker_ran))

(* --- Dp: identical results for every job count --- *)

let dp_cost p =
  let ctx = Cost.make p in
  fun ~l ~r -> Cost.a0_bucket ctx ~l ~r

let check_dp_equal label (a : Dp.result) (b : Dp.result) =
  if not (Float.equal a.Dp.cost b.Dp.cost) then
    Alcotest.failf "%s: cost %.17g <> %.17g" label a.Dp.cost b.Dp.cost;
  Alcotest.(check (array int))
    (label ^ ": rights")
    (Bucket.rights a.Dp.bucketing)
    (Bucket.rights b.Dp.bucketing)

let test_dp_jobs_deterministic_random () =
  let rng = Rng.create 0x9A7 in
  for trial = 1 to 25 do
    let n = 4 + Rng.int rng 27 in
    let data = Helpers.random_int_data rng ~n ~hi:20 in
    let p = Helpers.prefix_of data in
    let cost = dp_cost p in
    let buckets = 1 + Rng.int rng 4 in
    let base = Dp.solve ~n ~buckets ~cost () in
    List.iter
      (fun jobs ->
        check_dp_equal
          (Printf.sprintf "trial %d jobs %d" trial jobs)
          base
          (Dp.solve ~jobs ~n ~buckets ~cost ()))
      jobs_sweep
  done

let test_dp_jobs_deterministic_qcheck =
  Helpers.qtest ~count:60 "dp: jobs=2 == jobs=1" Helpers.small_data_arb
    (fun data ->
      let p = Helpers.prefix_of data in
      let n = Prefix.n p in
      let cost = dp_cost p in
      let seq = Dp.solve ~n ~buckets:3 ~cost () in
      let par = Dp.solve ~jobs:2 ~n ~buckets:3 ~cost () in
      Float.equal seq.Dp.cost par.Dp.cost
      && Bucket.rights seq.Dp.bucketing = Bucket.rights par.Dp.bucketing)

(* --- Opt_a: identical results, state counts included --- *)

let opt_a_key_cap = 100_000

let check_opt_a_equal label (a : Opt_a.result) (b : Opt_a.result) =
  if not (Float.equal a.Opt_a.sse b.Opt_a.sse) then
    Alcotest.failf "%s: sse %.17g <> %.17g" label a.Opt_a.sse b.Opt_a.sse;
  Alcotest.(check (array int))
    (label ^ ": rights")
    (Bucket.rights (Histogram.bucketing a.Opt_a.histogram))
    (Bucket.rights (Histogram.bucketing b.Opt_a.histogram));
  Alcotest.(check int) (label ^ ": states") a.Opt_a.states b.Opt_a.states

let test_opt_a_jobs_deterministic_random () =
  let rng = Rng.create 0xB0B in
  for trial = 1 to 12 do
    let n = 4 + Rng.int rng 10 in
    let data = Helpers.random_int_data rng ~n ~hi:15 in
    let p = Helpers.prefix_of data in
    let buckets = 1 + Rng.int rng 4 in
    let base = Opt_a.build_exact ~key_cap:opt_a_key_cap p ~buckets in
    List.iter
      (fun jobs ->
        check_opt_a_equal
          (Printf.sprintf "trial %d jobs %d" trial jobs)
          base
          (Opt_a.build_exact ~key_cap:opt_a_key_cap ~jobs p ~buckets))
      jobs_sweep
  done

let test_opt_a_beam_jobs_deterministic () =
  (* Beam truncation reorders nothing across job counts either: the
     truncated survivors (a function of Ktbl layout) must agree. *)
  let data = [| 9.; 1.; 4.; 4.; 7.; 2.; 8.; 3.; 6.; 5.; 2.; 7. |] in
  let p = Prefix.create data in
  List.iter
    (fun beam ->
      let base = Opt_a.build_exact ~key_cap:opt_a_key_cap ~beam p ~buckets:4 in
      List.iter
        (fun jobs ->
          check_opt_a_equal
            (Printf.sprintf "beam %d jobs %d" beam jobs)
            base
            (Opt_a.build_exact ~key_cap:opt_a_key_cap ~beam ~jobs p ~buckets:4))
        jobs_sweep)
    [ 1; 3; 17 ]

let test_opt_a_too_many_states_all_jobs () =
  let data = Array.init 14 (fun i -> float_of_int ((i * 5 mod 11) + 1)) in
  let p = Prefix.create data in
  List.iter
    (fun jobs ->
      match
        Opt_a.build_exact ~key_cap:opt_a_key_cap ~max_states:40 ~jobs p
          ~buckets:4
      with
      | _ -> Alcotest.failf "jobs=%d: 40 states must not suffice" jobs
      | exception Opt_a.Too_many_states { limit; _ } ->
          Alcotest.(check int) "limit echoed" 40 limit)
    jobs_sweep

(* --- snapshots: byte-identical at matching positions --- *)

let opt_a_data = [| 1.; 3.; 5.; 11.; 12.; 13.; 2.; 8.; 4.; 6. |]
let opt_a_buckets = 4

let dp_rows ~n ~b =
  let rows = ref 0 in
  for k = 1 to b do
    rows := !rows + (n - k + 1)
  done;
  !rows

(* The snapshot body carries a "next <k> <i>" resume-position line; key
   each captured snapshot by it so byte comparison pairs up snapshots
   taken at the same DP position under different job counts. *)
let next_line_of bytes =
  let needle = "\nnext " in
  let rec find from =
    if from + String.length needle > String.length bytes then None
    else if String.sub bytes from (String.length needle) = needle then Some from
    else find (from + 1)
  in
  match find 0 with
  | None -> Alcotest.fail "snapshot has no next-position line"
  | Some at ->
      let stop = String.index_from bytes (at + 1) '\n' in
      String.sub bytes (at + 1) (stop - at - 1)

let collect_opt_a_snapshots ~jobs =
  let p = Prefix.create opt_a_data in
  let rows = dp_rows ~n:(Prefix.n p) ~b:opt_a_buckets in
  let snaps = Hashtbl.create 16 in
  for budget = 1 to rows do
    with_tmp ".ckpt" (fun path ->
        let governor =
          Governor.create ~deadline_mode:Governor.Snapshot ~poll_budget:budget
            ()
        in
        match
          Opt_a.build_exact ~key_cap:opt_a_key_cap ~governor
            ~checkpoint_path:path ~jobs p ~buckets:opt_a_buckets
        with
        | _ -> ()
        | exception Governor.Interrupted _ ->
            let bytes = read_file path in
            Hashtbl.replace snaps (next_line_of bytes) bytes)
  done;
  snaps

let test_opt_a_snapshot_bytes_match_across_jobs () =
  let seq = collect_opt_a_snapshots ~jobs:1 in
  List.iter
    (fun jobs ->
      let par = collect_opt_a_snapshots ~jobs in
      let compared = ref 0 in
      Hashtbl.iter
        (fun pos bytes ->
          match Hashtbl.find_opt seq pos with
          | None ->
              Alcotest.failf
                "jobs=%d snapshot at %S has no sequential counterpart" jobs pos
          | Some seq_bytes ->
              incr compared;
              if bytes <> seq_bytes then
                Alcotest.failf "jobs=%d snapshot at %S differs from jobs=1"
                  jobs pos)
        par;
      (* Parallel polls sit at chunk barriers — a strict subset of the
         sequential per-cell polls — but the subset must not be empty. *)
      if !compared = 0 then
        Alcotest.failf "jobs=%d produced no comparable snapshots" jobs)
    [ 2; 4 ]

(* --- cross-jobs kill-and-resume --- *)

let opt_a_base () =
  Opt_a.build_exact ~key_cap:opt_a_key_cap
    (Prefix.create opt_a_data)
    ~buckets:opt_a_buckets

let test_opt_a_cross_jobs_resume () =
  let p = Prefix.create opt_a_data in
  let base = opt_a_base () in
  let rows = dp_rows ~n:(Prefix.n p) ~b:opt_a_buckets in
  let resumed_some = ref false in
  (* Interrupt a parallel run, finish it sequentially — and the
     reverse.  Either way the final answer is the uninterrupted one. *)
  List.iter
    (fun (kill_jobs, resume_jobs) ->
      for budget = 1 to rows do
        with_tmp ".ckpt" (fun path ->
            let governor =
              Governor.create ~deadline_mode:Governor.Snapshot
                ~poll_budget:budget ()
            in
            match
              Opt_a.build_exact ~key_cap:opt_a_key_cap ~governor
                ~checkpoint_path:path ~jobs:kill_jobs p ~buckets:opt_a_buckets
            with
            | r ->
                check_opt_a_equal
                  (Printf.sprintf "budget %d completed" budget)
                  base r
            | exception Governor.Interrupted { checkpoint; _ } ->
                resumed_some := true;
                check_opt_a_equal
                  (Printf.sprintf "budget %d kill@%d resume@%d" budget
                     kill_jobs resume_jobs)
                  base
                  (Opt_a.build_exact ~key_cap:opt_a_key_cap
                     ~resume_from:checkpoint ~jobs:resume_jobs p
                     ~buckets:opt_a_buckets))
      done)
    [ (4, 1); (1, 4); (2, 2) ];
  Alcotest.(check bool) "at least one interruption" true !resumed_some

let test_dp_cross_jobs_resume () =
  let data = [| 1.; 3.; 5.; 11.; 12.; 13.; 2.; 8. |] in
  let p = Prefix.create data in
  let n = Prefix.n p in
  let buckets = 3 in
  let cost = dp_cost p in
  let base = Dp.solve ~n ~buckets ~cost () in
  let rows = dp_rows ~n ~b:buckets in
  List.iter
    (fun (kill_jobs, resume_jobs) ->
      for budget = 1 to rows do
        with_tmp ".ckpt" (fun path ->
            let governor =
              Governor.create ~deadline_mode:Governor.Snapshot
                ~poll_budget:budget ()
            in
            match
              Dp.solve ~governor ~checkpoint_path:path ~fingerprint:"xj"
                ~jobs:kill_jobs ~n ~buckets ~cost ()
            with
            | r -> check_dp_equal (Printf.sprintf "budget %d done" budget) base r
            | exception Governor.Interrupted { checkpoint; _ } ->
                check_dp_equal
                  (Printf.sprintf "budget %d kill@%d resume@%d" budget
                     kill_jobs resume_jobs)
                  base
                  (Dp.solve ~resume_from:checkpoint ~fingerprint:"xj"
                     ~jobs:resume_jobs ~n ~buckets ~cost ()))
      done)
    [ (4, 1); (1, 4) ]

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "every index once" `Quick
            test_pool_runs_every_index_once;
          Alcotest.test_case "empty range" `Quick test_pool_empty_range_is_noop;
          Alcotest.test_case "smallest failure wins" `Quick
            test_pool_reraises_smallest_failing_index;
          Alcotest.test_case "reusable" `Quick test_pool_is_reusable_across_runs;
          Alcotest.test_case "survives failure" `Quick
            test_pool_survives_a_failed_run;
          Alcotest.test_case "with_pool on exception" `Quick
            test_with_pool_shuts_down_on_exception;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "modes agree" `Quick test_pool_dispatch_modes_agree;
          Alcotest.test_case "sequential stays inline" `Quick
            test_pool_sequential_dispatch_stays_on_coordinator;
          Alcotest.test_case "auto pins inline on one core" `Quick
            test_pool_auto_pins_inline_on_one_core;
          Alcotest.test_case "parallel reaches workers" `Quick
            test_pool_parallel_dispatch_reaches_workers;
        ] );
      ( "dp-determinism",
        [
          Alcotest.test_case "random sweeps" `Quick
            test_dp_jobs_deterministic_random;
          test_dp_jobs_deterministic_qcheck;
        ] );
      ( "opt-a-determinism",
        [
          Alcotest.test_case "random sweeps" `Quick
            test_opt_a_jobs_deterministic_random;
          Alcotest.test_case "beam truncation" `Quick
            test_opt_a_beam_jobs_deterministic;
          Alcotest.test_case "state budget" `Quick
            test_opt_a_too_many_states_all_jobs;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "byte-identical across jobs" `Quick
            test_opt_a_snapshot_bytes_match_across_jobs;
        ] );
      ( "cross-jobs-resume",
        [
          Alcotest.test_case "opt-a kill/resume sweep" `Quick
            test_opt_a_cross_jobs_resume;
          Alcotest.test_case "dp kill/resume sweep" `Quick
            test_dp_cross_jobs_resume;
        ] );
    ]
