module Ktbl = Rs_histogram.Ktbl
module Rng = Rs_dist.Rng

let test_empty () =
  let t = Ktbl.create () in
  Alcotest.(check int) "length" 0 (Ktbl.length t);
  Alcotest.(check bool) "find" true (Ktbl.find_f t 42 = None);
  Alcotest.(check bool) "min" true (Ktbl.fold_min_f t = None)

let test_insert_and_update () =
  let t = Ktbl.create () in
  Alcotest.(check bool) "new key" true
    (Ktbl.update_min t ~key:5 ~f:10. ~prev_j:1 ~prev_key:2);
  Alcotest.(check bool) "existing key" false
    (Ktbl.update_min t ~key:5 ~f:20. ~prev_j:3 ~prev_key:4);
  (* Larger f must not replace. *)
  Alcotest.(check (option (pair int int))) "parent kept" (Some (1, 2))
    (Ktbl.find_parent t 5);
  Alcotest.(check bool) "f kept" true (Ktbl.find_f t 5 = Some 10.);
  (* Smaller f replaces value and parent. *)
  ignore (Ktbl.update_min t ~key:5 ~f:3. ~prev_j:7 ~prev_key:8);
  Alcotest.(check (option (pair int int))) "parent updated" (Some (7, 8))
    (Ktbl.find_parent t 5);
  Alcotest.(check bool) "f updated" true (Ktbl.find_f t 5 = Some 3.);
  Alcotest.(check int) "length" 1 (Ktbl.length t)

let test_negative_and_zero_keys () =
  let t = Ktbl.create () in
  List.iter
    (fun k -> ignore (Ktbl.update_min t ~key:k ~f:(float_of_int k) ~prev_j:0 ~prev_key:0))
    [ 0; -1; 1; min_int + 1; max_int; -999999 ];
  Alcotest.(check int) "all present" 6 (Ktbl.length t);
  Alcotest.(check bool) "negative found" true (Ktbl.find_f t (-999999) = Some (-999999.))

let test_growth_many_keys () =
  let t = Ktbl.create () in
  let n = 100_000 in
  for k = 0 to n - 1 do
    ignore (Ktbl.update_min t ~key:(k * 7) ~f:(float_of_int k) ~prev_j:k ~prev_key:(-k))
  done;
  Alcotest.(check int) "length" n (Ktbl.length t);
  for k = 0 to n - 1 do
    if Ktbl.find_f t (k * 7) <> Some (float_of_int k) then
      Alcotest.failf "lost key %d" (k * 7)
  done

let test_iter_visits_all () =
  let t = Ktbl.create () in
  for k = 1 to 500 do
    ignore (Ktbl.update_min t ~key:(-k) ~f:(float_of_int (k mod 17)) ~prev_j:0 ~prev_key:0)
  done;
  let seen = ref 0 and sum = ref 0 in
  Ktbl.iter (fun ~key ~f:_ -> incr seen; sum := !sum + key) t;
  Alcotest.(check int) "count" 500 !seen;
  Alcotest.(check int) "keys" (-(500 * 501 / 2)) !sum

let test_fold_min () =
  let t = Ktbl.create () in
  ignore (Ktbl.update_min t ~key:1 ~f:5. ~prev_j:0 ~prev_key:0);
  ignore (Ktbl.update_min t ~key:2 ~f:3. ~prev_j:0 ~prev_key:0);
  ignore (Ktbl.update_min t ~key:3 ~f:9. ~prev_j:0 ~prev_key:0);
  Alcotest.(check bool) "min" true (Ktbl.fold_min_f t = Some (2, 3.))

let test_reset () =
  let t = Ktbl.create () in
  for k = 1 to 1000 do
    ignore (Ktbl.update_min t ~key:k ~f:(float_of_int k) ~prev_j:0 ~prev_key:0)
  done;
  let cap_before = (Ktbl.export t).Ktbl.capacity in
  Ktbl.reset t;
  Alcotest.(check int) "empty after reset" 0 (Ktbl.length t);
  Alcotest.(check bool) "find after reset" true (Ktbl.find_f t 7 = None);
  Alcotest.(check int) "capacity kept" cap_before (Ktbl.export t).Ktbl.capacity;
  (* Still fully usable after reset. *)
  for k = 1 to 100 do
    ignore (Ktbl.update_min t ~key:(-k) ~f:(float_of_int k) ~prev_j:k ~prev_key:k)
  done;
  Alcotest.(check int) "refilled" 100 (Ktbl.length t)

(* The load-bearing arena property: a table built through a recycled
   arena must have the exact same physical slot layout (hence snapshot
   bytes and DP tie-breaking) as one built fresh. *)
let prop_arena_layout_identical =
  Helpers.qtest ~count:100 "arena layout = fresh layout"
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create seed in
      let ops =
        Array.init 3_000 (fun _ ->
            ( Rng.int rng 400 - 200,
              float_of_int (Rng.int rng 1000),
              Rng.int rng 50,
              Rng.int rng 50 ))
      in
      let run t =
        Array.iter
          (fun (key, f, prev_j, prev_key) ->
            ignore (Ktbl.update_min t ~key ~f ~prev_j ~prev_key))
          ops;
        Ktbl.export t
      in
      let fresh = run (Ktbl.create ()) in
      let a = Ktbl.arena () in
      (* Pre-seasoning: grow a table through every capacity, then donate
         everything, so the second run reuses recycled buffers at every
         growth step. *)
      let warm = Ktbl.create ~arena:a () in
      ignore (run warm);
      Ktbl.recycle warm;
      let recycled = run (Ktbl.create ~arena:a ()) in
      fresh = recycled)

let test_recycle_isolates () =
  let a = Ktbl.arena () in
  let t = Ktbl.create ~arena:a () in
  for k = 1 to 500 do
    ignore (Ktbl.update_min t ~key:k ~f:1. ~prev_j:0 ~prev_key:0)
  done;
  Ktbl.recycle t;
  Alcotest.(check int) "empty after recycle" 0 (Ktbl.length t);
  (* A new table takes the donated buffers; writes to it must not leak
     into the recycled handle, and vice versa. *)
  let u = Ktbl.create ~arena:a () in
  for k = 1 to 500 do
    ignore (Ktbl.update_min u ~key:(2 * k) ~f:2. ~prev_j:0 ~prev_key:0)
  done;
  ignore (Ktbl.update_min t ~key:999 ~f:9. ~prev_j:0 ~prev_key:0);
  Alcotest.(check bool) "no leak into t" true (Ktbl.find_f t 1000 = None);
  Alcotest.(check bool) "no leak into u" true (Ktbl.find_f u 999 = None);
  Alcotest.(check int) "u intact" 500 (Ktbl.length u)

(* Randomized differential test against Hashtbl semantics. *)
let prop_matches_hashtbl =
  Helpers.qtest ~count:100 "ktbl = hashtbl model"
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create seed in
      let t = Ktbl.create () in
      let model : (int, float * (int * int)) Hashtbl.t = Hashtbl.create 16 in
      for _ = 1 to 2_000 do
        let key = Rng.int rng 300 - 150 in
        let f = float_of_int (Rng.int rng 1000) in
        let pj = Rng.int rng 50 and pk = Rng.int rng 50 in
        ignore (Ktbl.update_min t ~key ~f ~prev_j:pj ~prev_key:pk);
        match Hashtbl.find_opt model key with
        | Some (f0, _) when f0 <= f -> ()
        | _ -> Hashtbl.replace model key (f, (pj, pk))
      done;
      Hashtbl.length model = Ktbl.length t
      && Hashtbl.fold
           (fun key (f, parent) ok ->
             ok
             && Ktbl.find_f t key = Some f
             && Ktbl.find_parent t key = Some parent)
           model true)

let () =
  Alcotest.run "ktbl"
    [
      ( "ops",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert/update" `Quick test_insert_and_update;
          Alcotest.test_case "negative keys" `Quick test_negative_and_zero_keys;
          Alcotest.test_case "growth" `Quick test_growth_many_keys;
          Alcotest.test_case "iter" `Quick test_iter_visits_all;
          Alcotest.test_case "fold_min" `Quick test_fold_min;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "recycle isolates" `Quick test_recycle_isolates;
          prop_arena_layout_identical;
          prop_matches_hashtbl;
        ] );
    ]
