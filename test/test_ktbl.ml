module Ktbl = Rs_histogram.Ktbl
module Rng = Rs_dist.Rng

let test_empty () =
  let t = Ktbl.create () in
  Alcotest.(check int) "length" 0 (Ktbl.length t);
  Alcotest.(check bool) "find" true (Ktbl.find_f t 42 = None);
  Alcotest.(check bool) "min" true (Ktbl.fold_min_f t = None)

let test_insert_and_update () =
  let t = Ktbl.create () in
  Alcotest.(check bool) "new key" true
    (Ktbl.update_min t ~key:5 ~f:10. ~prev_j:1 ~prev_key:2);
  Alcotest.(check bool) "existing key" false
    (Ktbl.update_min t ~key:5 ~f:20. ~prev_j:3 ~prev_key:4);
  (* Larger f must not replace. *)
  Alcotest.(check (option (pair int int))) "parent kept" (Some (1, 2))
    (Ktbl.find_parent t 5);
  Alcotest.(check bool) "f kept" true (Ktbl.find_f t 5 = Some 10.);
  (* Smaller f replaces value and parent. *)
  ignore (Ktbl.update_min t ~key:5 ~f:3. ~prev_j:7 ~prev_key:8);
  Alcotest.(check (option (pair int int))) "parent updated" (Some (7, 8))
    (Ktbl.find_parent t 5);
  Alcotest.(check bool) "f updated" true (Ktbl.find_f t 5 = Some 3.);
  Alcotest.(check int) "length" 1 (Ktbl.length t)

let test_negative_and_zero_keys () =
  let t = Ktbl.create () in
  List.iter
    (fun k -> ignore (Ktbl.update_min t ~key:k ~f:(float_of_int k) ~prev_j:0 ~prev_key:0))
    [ 0; -1; 1; -Ktbl.max_key + 1; Ktbl.max_key; -999999 ];
  Alcotest.(check int) "all present" 6 (Ktbl.length t);
  Alcotest.(check bool) "negative found" true (Ktbl.find_f t (-999999) = Some (-999999.));
  Alcotest.(check bool)
    "domain edge found" true
    (Ktbl.find_f t Ktbl.max_key = Some (float_of_int Ktbl.max_key))

let test_key_domain_guard () =
  let t = Ktbl.create () in
  let rejects k =
    match Ktbl.update_min t ~key:k ~f:0. ~prev_j:0 ~prev_key:0 with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "max_key+1 rejected" true (rejects (Ktbl.max_key + 1));
  Alcotest.(check bool) "max_int rejected" true (rejects max_int);
  Alcotest.(check bool) "min_int rejected" true (rejects min_int);
  Alcotest.(check bool)
    "out-of-domain find is None" true
    (Ktbl.find_f t (Ktbl.max_key + 1) = None);
  Alcotest.(check int) "nothing inserted" 0 (Ktbl.length t)

let test_growth_many_keys () =
  let t = Ktbl.create () in
  let n = 100_000 in
  for k = 0 to n - 1 do
    ignore (Ktbl.update_min t ~key:(k * 7) ~f:(float_of_int k) ~prev_j:k ~prev_key:(-k))
  done;
  Alcotest.(check int) "length" n (Ktbl.length t);
  for k = 0 to n - 1 do
    if Ktbl.find_f t (k * 7) <> Some (float_of_int k) then
      Alcotest.failf "lost key %d" (k * 7)
  done

let test_iter_visits_all () =
  let t = Ktbl.create () in
  for k = 1 to 500 do
    ignore (Ktbl.update_min t ~key:(-k) ~f:(float_of_int (k mod 17)) ~prev_j:0 ~prev_key:0)
  done;
  let seen = ref 0 and sum = ref 0 in
  Ktbl.iter (fun ~key ~f:_ -> incr seen; sum := !sum + key) t;
  Alcotest.(check int) "count" 500 !seen;
  Alcotest.(check int) "keys" (-(500 * 501 / 2)) !sum

let test_fold_min () =
  let t = Ktbl.create () in
  ignore (Ktbl.update_min t ~key:1 ~f:5. ~prev_j:0 ~prev_key:0);
  ignore (Ktbl.update_min t ~key:2 ~f:3. ~prev_j:0 ~prev_key:0);
  ignore (Ktbl.update_min t ~key:3 ~f:9. ~prev_j:0 ~prev_key:0);
  Alcotest.(check bool) "min" true (Ktbl.fold_min_f t = Some (2, 3.))

let test_reset () =
  let t = Ktbl.create () in
  for k = 1 to 1000 do
    ignore (Ktbl.update_min t ~key:k ~f:(float_of_int k) ~prev_j:0 ~prev_key:0)
  done;
  let cap_before = (Ktbl.export t).Ktbl.capacity in
  Ktbl.reset t;
  Alcotest.(check int) "empty after reset" 0 (Ktbl.length t);
  Alcotest.(check bool) "find after reset" true (Ktbl.find_f t 7 = None);
  Alcotest.(check int) "capacity kept" cap_before (Ktbl.export t).Ktbl.capacity;
  (* Still fully usable after reset. *)
  for k = 1 to 100 do
    ignore (Ktbl.update_min t ~key:(-k) ~f:(float_of_int k) ~prev_j:k ~prev_key:k)
  done;
  Alcotest.(check int) "refilled" 100 (Ktbl.length t)

(* The load-bearing arena property: a table built through a recycled
   arena must have the exact same physical slot layout (hence snapshot
   bytes and DP tie-breaking) as one built fresh. *)
let prop_arena_layout_identical =
  Helpers.qtest ~count:100 "arena layout = fresh layout"
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create seed in
      let ops =
        Array.init 3_000 (fun _ ->
            ( Rng.int rng 400 - 200,
              float_of_int (Rng.int rng 1000),
              Rng.int rng 50,
              Rng.int rng 50 ))
      in
      let run t =
        Array.iter
          (fun (key, f, prev_j, prev_key) ->
            ignore (Ktbl.update_min t ~key ~f ~prev_j ~prev_key))
          ops;
        Ktbl.export t
      in
      let fresh = run (Ktbl.create ()) in
      let a = Ktbl.arena () in
      (* Pre-seasoning: grow a table through every capacity, then donate
         everything, so the second run reuses recycled buffers at every
         growth step. *)
      let warm = Ktbl.create ~arena:a () in
      ignore (run warm);
      Ktbl.recycle warm;
      let recycled = run (Ktbl.create ~arena:a ()) in
      fresh = recycled)

let test_recycle_isolates () =
  let a = Ktbl.arena () in
  let t = Ktbl.create ~arena:a () in
  for k = 1 to 500 do
    ignore (Ktbl.update_min t ~key:k ~f:1. ~prev_j:0 ~prev_key:0)
  done;
  Ktbl.recycle t;
  Alcotest.(check int) "empty after recycle" 0 (Ktbl.length t);
  (* A new table takes the donated buffers; writes to it must not leak
     into the recycled handle, and vice versa. *)
  let u = Ktbl.create ~arena:a () in
  for k = 1 to 500 do
    ignore (Ktbl.update_min u ~key:(2 * k) ~f:2. ~prev_j:0 ~prev_key:0)
  done;
  ignore (Ktbl.update_min t ~key:999 ~f:9. ~prev_j:0 ~prev_key:0);
  Alcotest.(check bool) "no leak into t" true (Ktbl.find_f t 1000 = None);
  Alcotest.(check bool) "no leak into u" true (Ktbl.find_f u 999 = None);
  Alcotest.(check int) "u intact" 500 (Ktbl.length u)

(* --- the sealed stream and the fused transition kernel --- *)

let test_sealed_matches_iter () =
  let t = Ktbl.create () in
  for k = 1 to 300 do
    ignore
      (Ktbl.update_min t ~key:(((k * 13) mod 401) - 200)
         ~f:(float_of_int (k mod 29))
         ~prev_j:k ~prev_key:0)
  done;
  let s = Ktbl.sealed t in
  Alcotest.(check int)
    "seal holds 2 floats per entry"
    (2 * Ktbl.length t)
    (Rs_util.Tab.f1_len s);
  (* exactly iter's visit order, as (key-as-float, f) pairs *)
  let at = ref 0 in
  Ktbl.iter
    (fun ~key ~f ->
      Alcotest.(check (float 0.))
        "key lane" (float_of_int key)
        (Rs_util.Tab.f1_get s (2 * !at));
      Alcotest.(check (float 0.))
        "f lane" f
        (Rs_util.Tab.f1_get s ((2 * !at) + 1));
      incr at)
    t;
  Alcotest.(check int) "every entry sealed" (Ktbl.length t) !at;
  (* point-in-time: later mutations don't reach an existing seal *)
  ignore (Ktbl.update_min t ~key:7777 ~f:1. ~prev_j:0 ~prev_key:0);
  Alcotest.(check int)
    "seal is a copy"
    (2 * (Ktbl.length t - 1))
    (Rs_util.Tab.f1_len s)

(* The fused [relax] against its own specification — the
   [iter]+[update_min] reference formulation with identical float
   evaluation order, pruning, and budget cutoff.  Physical layout
   equality ([export]) is the strong form: same growth points, same
   insertion order, same tie-breaking, hence same snapshot bytes. *)
let prop_relax_matches_reference =
  Helpers.qtest ~count:100 "relax = iter+update_min reference"
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create seed in
      let src = Ktbl.create () in
      let entries = 1 + Rng.int rng 400 in
      for _ = 1 to entries do
        ignore
          (Ktbl.update_min src
             ~key:(Rng.int rng 500 - 250)
             ~f:(float_of_int (Rng.int rng 1000) /. 8.)
             ~prev_j:(Rng.int rng 20) ~prev_key:0)
      done;
      let seal = Ktbl.sealed src in
      let c = float_of_int (Rng.int rng 100) /. 4. in
      let p2 = float_of_int (Rng.int rng 64 - 32) /. 2. in
      let s2 = Rng.int rng 200 - 100 in
      let prev_j = Rng.int rng 30 in
      let key_cap = 50 + Rng.int rng 400 in
      let final = Rng.int rng 4 = 0 in
      let budget = if Rng.int rng 3 = 0 then Rng.int rng 50 else max_int in
      (* fused kernel *)
      let dst = Ktbl.create () in
      let stats = Ktbl.fresh_relax_stats () in
      let inserted =
        Ktbl.relax ~src:seal ~dst ~c ~p2 ~s2 ~prev_j ~key_cap ~final ~budget
          ~profile:true ~stats
      in
      (* reference: walk the same seal stream through update_min *)
      let ref_dst = Ktbl.create () in
      let ref_inserted = ref 0 in
      let ref_pruned = ref 0 in
      let count = Rs_util.Tab.f1_len seal / 2 in
      let s = ref 0 in
      let stop = ref false in
      while (not !stop) && !s < count do
        let fkey = Rs_util.Tab.f1_get seal (2 * !s) in
        let f = Rs_util.Tab.f1_get seal ((2 * !s) + 1) in
        let key = int_of_float fkey in
        let key' = key + s2 in
        if final || abs key' <= key_cap then begin
          let f' = f +. c +. (0.5 *. fkey *. p2) in
          if Ktbl.update_min ref_dst ~key:key' ~f:f' ~prev_j ~prev_key:key
          then begin
            incr ref_inserted;
            if !ref_inserted > budget then stop := true
          end
        end
        else incr ref_pruned;
        incr s
      done;
      inserted = !ref_inserted
      && stats.Ktbl.rx_pruned = !ref_pruned
      && Ktbl.export dst = Ktbl.export ref_dst)

(* The probe profile tallies only on the insert branch — offers that
   update an existing key (or get pruned) record nothing — and is
   deterministic: the same batch into the same table tallies the same
   numbers. *)
let test_relax_profile_stats () =
  let src = Ktbl.create () in
  for k = 1 to 200 do
    ignore (Ktbl.update_min src ~key:k ~f:(float_of_int k) ~prev_j:0 ~prev_key:0)
  done;
  let seal = Ktbl.sealed src in
  let run ~profile =
    let dst = Ktbl.create () in
    let stats = Ktbl.fresh_relax_stats () in
    let ins =
      Ktbl.relax ~src:seal ~dst ~c:0. ~p2:0. ~s2:0 ~prev_j:0 ~key_cap:1000
        ~final:false ~budget:max_int ~profile ~stats
    in
    (ins, stats)
  in
  let ins, on = run ~profile:true in
  Alcotest.(check int) "every transition inserts here" 200 ins;
  Alcotest.(check int) "one probe sequence per insertion" ins
    on.Ktbl.rx_probe_obs;
  Alcotest.(check bool) "every probe sequence is >= 1" true
    (on.Ktbl.rx_probe_sum >= on.Ktbl.rx_probe_obs);
  Alcotest.(check bool) "max recorded" true (on.Ktbl.rx_probe_max >= 1);
  Alcotest.(check int) "tally length pinned" Ktbl.probe_buckets
    (Array.length on.Ktbl.rx_probe_counts);
  Alcotest.(check int) "tallies sum to observations" on.Ktbl.rx_probe_obs
    (Array.fold_left ( + ) 0 on.Ktbl.rx_probe_counts);
  (* a second pass offers only existing keys: nothing tallies *)
  let redo_dst = Ktbl.create () in
  let redo_stats = Ktbl.fresh_relax_stats () in
  ignore
    (Ktbl.relax ~src:seal ~dst:redo_dst ~c:0. ~p2:0. ~s2:0 ~prev_j:0
       ~key_cap:1000 ~final:false ~budget:max_int ~profile:true
       ~stats:redo_stats);
  ignore
    (Ktbl.relax ~src:seal ~dst:redo_dst ~c:1. ~p2:0. ~s2:0 ~prev_j:0
       ~key_cap:1000 ~final:false ~budget:max_int ~profile:true
       ~stats:redo_stats);
  Alcotest.(check int) "updates record nothing" 200
    redo_stats.Ktbl.rx_probe_obs;
  (* deterministic: same batch, same tallies *)
  let _, again = run ~profile:true in
  Alcotest.(check int) "deterministic sum" on.Ktbl.rx_probe_sum
    again.Ktbl.rx_probe_sum;
  Alcotest.(check bool) "deterministic tallies" true
    (on.Ktbl.rx_probe_counts = again.Ktbl.rx_probe_counts);
  let _, off = run ~profile:false in
  Alcotest.(check int) "no probe obs when off" 0 off.Ktbl.rx_probe_obs;
  Alcotest.(check int) "no tallies when off" 0
    (Array.fold_left ( + ) 0 off.Ktbl.rx_probe_counts);
  (* merge accumulates every lane *)
  let _, into = run ~profile:true in
  Ktbl.merge_relax_stats ~into on;
  Alcotest.(check int) "merged obs" 400 into.Ktbl.rx_probe_obs;
  Alcotest.(check int) "merged tallies" 400
    (Array.fold_left ( + ) 0 into.Ktbl.rx_probe_counts)

(* Randomized differential test against Hashtbl semantics. *)
let prop_matches_hashtbl =
  Helpers.qtest ~count:100 "ktbl = hashtbl model"
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create seed in
      let t = Ktbl.create () in
      let model : (int, float * (int * int)) Hashtbl.t = Hashtbl.create 16 in
      for _ = 1 to 2_000 do
        let key = Rng.int rng 300 - 150 in
        let f = float_of_int (Rng.int rng 1000) in
        let pj = Rng.int rng 50 and pk = Rng.int rng 50 in
        ignore (Ktbl.update_min t ~key ~f ~prev_j:pj ~prev_key:pk);
        match Hashtbl.find_opt model key with
        | Some (f0, _) when f0 <= f -> ()
        | _ -> Hashtbl.replace model key (f, (pj, pk))
      done;
      Hashtbl.length model = Ktbl.length t
      && Hashtbl.fold
           (fun key (f, parent) ok ->
             ok
             && Ktbl.find_f t key = Some f
             && Ktbl.find_parent t key = Some parent)
           model true)

let () =
  Alcotest.run "ktbl"
    [
      ( "ops",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert/update" `Quick test_insert_and_update;
          Alcotest.test_case "negative keys" `Quick test_negative_and_zero_keys;
          Alcotest.test_case "key domain guard" `Quick test_key_domain_guard;
          Alcotest.test_case "growth" `Quick test_growth_many_keys;
          Alcotest.test_case "iter" `Quick test_iter_visits_all;
          Alcotest.test_case "fold_min" `Quick test_fold_min;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "recycle isolates" `Quick test_recycle_isolates;
          prop_arena_layout_identical;
          prop_matches_hashtbl;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "sealed matches iter" `Quick
            test_sealed_matches_iter;
          prop_relax_matches_reference;
          Alcotest.test_case "profile stats" `Quick test_relax_profile_stats;
        ] );
    ]
