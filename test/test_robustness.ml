(* Robustness: the typed error boundary, fault injection, the governed
   degradation ladder, ingestion validation, and the checksummed codec
   under adversarial mutation.  Everything here exercises failure paths;
   the happy paths live in test_core. *)

module Error = Rs_util.Error
module Faults = Rs_util.Faults
module Governor = Rs_util.Governor
module Prefix = Rs_util.Prefix
module Dataset = Rs_core.Dataset
module Builder = Rs_core.Builder
module Codec = Rs_core.Codec
module Synopsis = Rs_core.Synopsis
module H = Rs_histogram.Histogram
module Dp = Rs_histogram.Dp
module Opt_a = Rs_histogram.Opt_a
module Wsap0 = Rs_histogram.Wsap0
module W = Rs_wavelet.Synopsis
module Rng = Rs_dist.Rng

let tmp_file suffix = Filename.temp_file "rs_robust" suffix

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

(* Run [f] with a file holding [content]; always removes the file. *)
let with_file content f =
  let path = tmp_file ".txt" in
  write_file path content;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* --- error taxonomy --- *)

let e_bad = Error.Bad_dataset { source = "s"; line = Some 3; reason = "r" }
let e_unknown = Error.Unknown_method { name = "m"; known = [ "a"; "b" ] }
let e_corrupt = Error.Corrupt_synopsis { line = 7; reason = "r" }

let e_budget =
  Error.Budget_exhausted { stage = "opt-a"; states_used = 10; limit = 5 }

let e_timeout =
  Error.Timeout
    { stage = "dp"; elapsed = 2.; deadline = 1.; reason = Governor.Wall_clock }
let e_io = Error.Io_failure { path = "/nope"; reason = "r" }
let e_invalid = Error.Invalid_input "bad"

let test_exit_codes () =
  let check name code e = Alcotest.(check int) name code (Error.exit_code e) in
  check "bad dataset" 2 e_bad;
  check "unknown method" 2 e_unknown;
  check "io failure" 2 e_io;
  check "invalid input" 2 e_invalid;
  check "corrupt synopsis" 3 e_corrupt;
  check "budget" 4 e_budget;
  check "timeout" 4 e_timeout

let test_to_string_mentions_location () =
  Alcotest.(check bool)
    "line number" true
    (Helpers.contains (Error.to_string e_bad) ":3");
  Alcotest.(check bool)
    "corrupt line" true
    (Helpers.contains (Error.to_string e_corrupt) "line 7");
  Alcotest.(check bool)
    "stage" true
    (Helpers.contains (Error.to_string e_budget) "opt-a")

let test_guard_conversions () =
  (match Error.guard (fun () -> 42) with
  | Ok 42 -> ()
  | _ -> Alcotest.fail "Ok passthrough");
  (match Error.guard (fun () -> Error.raise_error e_timeout) with
  | Error (Error.Timeout _) -> ()
  | _ -> Alcotest.fail "Rs_error payload");
  (match Error.guard (fun () -> invalid_arg "x") with
  | Error (Error.Invalid_input "x") -> ()
  | _ -> Alcotest.fail "Invalid_argument");
  (match Error.guard (fun () -> failwith "y") with
  | Error (Error.Invalid_input "y") -> ()
  | _ -> Alcotest.fail "Failure");
  (match Error.guard (fun () -> raise (Sys_error "z")) with
  | Error (Error.Io_failure _) -> ()
  | _ -> Alcotest.fail "Sys_error");
  match
    Error.guard (fun () ->
        Faults.with_faults [ "g.site" ] (fun () -> Faults.trip "g.site"))
  with
  | Error (Error.Invalid_input m) ->
      Alcotest.(check bool) "names site" true (Helpers.contains m "g.site")
  | _ -> Alcotest.fail "Injected"

let test_error_get () =
  Alcotest.(check int) "ok" 5 (Error.get (Ok 5));
  match Error.get (Error e_corrupt) with
  | exception Error.Rs_error (Error.Corrupt_synopsis _) -> ()
  | _ -> Alcotest.fail "expected Rs_error"

(* --- fault injection --- *)

let test_faults_basics () =
  Faults.reset ();
  Faults.trip "never.armed" (* no-op *);
  Alcotest.(check bool) "not armed" false (Faults.armed "x");
  Faults.arm ~reason:"boom" "x";
  Alcotest.(check bool) "armed" true (Faults.armed "x");
  (match Faults.trip "x" with
  | exception Faults.Injected { site = "x"; reason = "boom" } -> ()
  | _ -> Alcotest.fail "expected Injected");
  (* Unlimited arming keeps firing. *)
  (match Faults.trip "x" with
  | exception Faults.Injected _ -> ()
  | _ -> Alcotest.fail "still armed");
  Faults.disarm "x";
  Faults.trip "x";
  Faults.reset ()

let test_faults_count_limited () =
  Faults.reset ();
  Faults.arm ~count:2 "y";
  let fired = ref 0 in
  for _ = 1 to 4 do
    try Faults.trip "y" with Faults.Injected _ -> incr fired
  done;
  Alcotest.(check int) "fires exactly count times" 2 !fired;
  Alcotest.(check bool) "auto-disarmed" false (Faults.armed "y");
  Faults.reset ()

let test_with_faults_resets_on_exception () =
  Faults.reset ();
  (try
     Faults.with_faults [ "a"; "b" ] (fun () ->
         Alcotest.(check bool) "armed inside" true (Faults.armed "a");
         failwith "escape")
   with Failure _ -> ());
  Alcotest.(check bool) "a reset" false (Faults.armed "a");
  Alcotest.(check bool) "b reset" false (Faults.armed "b")

(* --- governor --- *)

let spin_until_expired g =
  while not (Governor.expired g) do
    ignore (Sys.opaque_identity (Governor.elapsed g))
  done

let test_governor_basics () =
  Governor.check Governor.unlimited ~stage:"anything";
  Alcotest.(check bool) "unlimited never expires" false
    (Governor.expired Governor.unlimited);
  (match Governor.create ~deadline:0. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero deadline accepted");
  (match Governor.create ~deadline:(-1.) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative deadline accepted");
  let g = Governor.create ~deadline:0.001 () in
  Alcotest.(check (option (float 1e-9))) "deadline stored" (Some 0.001)
    (Governor.deadline g);
  spin_until_expired g;
  match Governor.check g ~stage:"spin" with
  | exception Governor.Deadline_exceeded { stage = "spin"; elapsed; deadline; _ }
    ->
      Alcotest.(check bool) "elapsed past deadline" true (elapsed >= deadline)
  | () -> Alcotest.fail "expected Deadline_exceeded"

let test_dp_honours_governor () =
  let g = Governor.create ~deadline:0.001 () in
  spin_until_expired g;
  match
    Dp.solve ~governor:g ~stage:"dp-test" ~n:64 ~buckets:4
      ~cost:(fun ~l ~r -> float_of_int (r - l))
      ()
  with
  | exception Governor.Deadline_exceeded { stage = "dp-test"; _ } -> ()
  | _ -> Alcotest.fail "DP ignored an expired governor"

(* --- dataset ingestion --- *)

let bad_dataset_line = function
  | Error (Error.Bad_dataset { line; _ }) -> line
  | Ok _ -> Alcotest.fail "expected Bad_dataset, got Ok"
  | Error e -> Alcotest.failf "expected Bad_dataset, got %s" (Error.to_string e)

let test_load_crlf_and_trailing_blanks () =
  with_file "1\r\n2\r\n# c\r\n3\r\n\r\n\n" (fun path ->
      let ds = Error.get (Dataset.load_result path) in
      Alcotest.(check int) "n" 3 (Dataset.n ds);
      Helpers.check_close "total" 6. (Dataset.total ds))

let test_load_empty_file () =
  with_file "" (fun path ->
      match bad_dataset_line (Dataset.load_result path) with
      | None -> ()
      | Some _ -> Alcotest.fail "empty file should have no line number")

let test_load_comments_only () =
  with_file "# a\n\n# b\n" (fun path ->
      match bad_dataset_line (Dataset.load_result path) with
      | None -> ()
      | Some _ -> Alcotest.fail "value-free file should have no line number")

let test_load_reports_offending_line () =
  with_file "1\n# ok\nnot-a-number\n4\n" (fun path ->
      Alcotest.(check (option int))
        "1-based line" (Some 3)
        (bad_dataset_line (Dataset.load_result path)))

let test_load_missing_file () =
  match Dataset.load_result "/nonexistent/rs/dataset.txt" with
  | Error (Error.Io_failure _) -> ()
  | _ -> Alcotest.fail "expected Io_failure"

let test_load_fault_injection () =
  with_file "1\n2\n" (fun path ->
      Faults.with_faults [ "dataset.load" ] (fun () ->
          match Dataset.load_result path with
          | Error (Error.Io_failure _) -> ()
          | _ -> Alcotest.fail "expected typed error under injection"))

let test_validate_reject () =
  (match Dataset.validate ~policy:Dataset.Reject [| 1.; 2.; 3. |] with
  | Ok (_, 0) -> ()
  | _ -> Alcotest.fail "clean data should pass untouched");
  match Dataset.validate ~policy:Dataset.Reject [| 1.; Float.nan; -3. |] with
  | Error (Error.Bad_dataset { line = Some 2; _ }) -> ()
  | _ -> Alcotest.fail "expected first offender at position 2"

let test_validate_clamp () =
  let data = [| 1.; Float.nan; Float.infinity; -4.; Float.neg_infinity; 7. |] in
  match Dataset.validate ~policy:Dataset.Clamp data with
  | Ok (fixed, modified) ->
      Alcotest.(check int) "modified count" 4 modified;
      Helpers.check_close "nan -> 0" 0. fixed.(1);
      Helpers.check_close "+inf -> finite max" 7. fixed.(2);
      Helpers.check_close "negative -> 0" 0. fixed.(3);
      Helpers.check_close "-inf -> 0" 0. fixed.(4);
      Helpers.check_close "valid untouched" 1. fixed.(0)
  | Error e -> Alcotest.failf "clamp failed: %s" (Error.to_string e)

let test_validate_repair () =
  (match Dataset.validate ~policy:Dataset.Repair [| 2.; Float.nan; 6. |] with
  | Ok (fixed, 1) -> Helpers.check_close "neighbour mean" 4. fixed.(1)
  | _ -> Alcotest.fail "repair mid");
  (match Dataset.validate ~policy:Dataset.Repair [| Float.nan; 5.; 6. |] with
  | Ok (fixed, 1) -> Helpers.check_close "one-sided edge" 5. fixed.(0)
  | _ -> Alcotest.fail "repair edge");
  match
    Dataset.validate ~policy:Dataset.Repair [| Float.nan; Float.nan |]
  with
  | Ok (fixed, 2) ->
      Helpers.check_close "no valid neighbours -> 0" 0. fixed.(0);
      Helpers.check_close "no valid neighbours -> 0" 0. fixed.(1)
  | _ -> Alcotest.fail "repair all-bad"

let test_load_policy_applies () =
  with_file "1\nnan\n3\n" (fun path ->
      (match Dataset.load_result path with
      | Error (Error.Bad_dataset _) -> ()
      | _ -> Alcotest.fail "Reject should refuse nan");
      match Dataset.load_result ~policy:Dataset.Clamp path with
      | Ok ds -> Helpers.check_close "clamped total" 4. (Dataset.total ds)
      | Error e -> Alcotest.failf "Clamp failed: %s" (Error.to_string e))

(* --- codec round-trips, per representation --- *)

let all_estimates s =
  let n = Synopsis.domain_size s in
  let out = ref [] in
  for a = 1 to n do
    for b = a to n do
      out := Synopsis.estimate s ~a ~b :: !out
    done
  done;
  !out

(* A save/load round-trip must reproduce every estimate bit-for-bit
   (floats are serialized as %h). *)
let roundtrip_exact ?version s =
  let s' = Error.get (Codec.decode_result (Codec.to_string ?version s)) in
  List.for_all2 (fun a b -> Float.equal a b) (all_estimates s)
    (all_estimates s')

let buckets_for data = max 1 (min 4 (Array.length data / 2))

let synopsis_of_method method_name data =
  let ds = Dataset.of_floats data in
  Builder.build ds ~method_name ~budget_words:20

let qtest_roundtrip name build =
  Helpers.qtest ~count:60 ("roundtrip " ^ name) Helpers.small_data_arb
    (fun data -> roundtrip_exact (build data))

let roundtrip_tests =
  [
    qtest_roundtrip "avg" (fun data -> synopsis_of_method "equi-width" data);
    qtest_roundtrip "sap0" (fun data -> synopsis_of_method "sap0" data);
    qtest_roundtrip "sap1" (fun data -> synopsis_of_method "sap1" data);
    qtest_roundtrip "sap0-explicit" (fun data ->
        let p = Prefix.create data in
        let n = Array.length data in
        let w = Wsap0.recency_weights ~n ~half_life:(float_of_int n /. 2.) in
        Synopsis.Histogram (Wsap0.build p w ~buckets:(buckets_for data)));
    qtest_roundtrip "avg-rounded" (fun data ->
        match synopsis_of_method "equi-width" data with
        | Synopsis.Histogram h ->
            Synopsis.Histogram
              (H.make ~rounded:true ~name:(H.name h) (H.bucketing h) (H.repr h))
        | s -> s);
    qtest_roundtrip "wavelet-data" (fun data ->
        Synopsis.Wavelet (W.top_b_data data ~b:3));
    qtest_roundtrip "wavelet-prefix" (fun data ->
        Synopsis.Wavelet (W.range_optimal data ~b:3));
    qtest_roundtrip "wavelet-two-sided" (fun data ->
        Synopsis.Wavelet (W.aa_2d data ~b:4));
    Helpers.qtest ~count:60 "roundtrip v1 (legacy)" Helpers.small_data_arb
      (fun data -> roundtrip_exact ~version:1 (synopsis_of_method "sap0" data));
  ]

let base_synopsis =
  lazy (synopsis_of_method "sap0" [| 3.; 1.; 4.; 1.; 5.; 9.; 2.; 6. |])

let test_codec_crlf_tolerated () =
  let s = Lazy.force base_synopsis in
  let crlf =
    String.concat "\r\n" (String.split_on_char '\n' (Codec.to_string s))
  in
  match Codec.decode_result crlf with
  | Ok s' ->
      Alcotest.(check bool) "estimates survive CRLF" true
        (List.for_all2 Float.equal (all_estimates s) (all_estimates s'))
  | Error e -> Alcotest.failf "CRLF rejected: %s" (Error.to_string e)

let expect_corrupt name = function
  | Error (Error.Corrupt_synopsis _) -> ()
  | Ok _ -> Alcotest.failf "%s: corruption went undetected" name
  | Error e ->
      Alcotest.failf "%s: wrong error class: %s" name (Error.to_string e)

let test_codec_detects_tampering () =
  let str = Codec.to_string (Lazy.force base_synopsis) in
  (* Flip one character inside the body: the CRC must catch it. *)
  let body_pos = String.length str - 3 in
  let flipped = Bytes.of_string str in
  Bytes.set flipped body_pos
    (Char.chr (Char.code (Bytes.get flipped body_pos) lxor 1));
  (match Codec.decode_result (Bytes.to_string flipped) with
  | Error (Error.Corrupt_synopsis { reason; _ }) ->
      Alcotest.(check bool) "names the CRC" true (Helpers.contains reason "CRC")
  | r -> expect_corrupt "bit flip" r);
  expect_corrupt "truncation"
    (Codec.decode_result (String.sub str 0 (String.length str - 5)));
  let lines = String.split_on_char '\n' str in
  let dup = List.concat_map (fun l -> [ l; l ]) lines in
  expect_corrupt "duplicated lines"
    (Codec.decode_result (String.concat "\n" dup))

let test_codec_bad_crc_line () =
  let str = Codec.to_string (Lazy.force base_synopsis) in
  let header, rest =
    match String.index_opt str '\n' with
    | Some i ->
        ( String.sub str 0 i,
          String.sub str (i + 1) (String.length str - i - 1) )
    | None -> Alcotest.fail "header"
  in
  let _, body =
    match String.index_opt rest '\n' with
    | Some i ->
        ( String.sub rest 0 i,
          String.sub rest (i + 1) (String.length rest - i - 1) )
    | None -> Alcotest.fail "crc line"
  in
  expect_corrupt "wrong crc"
    (Codec.decode_result (header ^ "\ncrc deadbeef\n" ^ body));
  expect_corrupt "malformed crc"
    (Codec.decode_result (header ^ "\ncrc zzzz\n" ^ body));
  expect_corrupt "missing crc"
    (Codec.decode_result (header ^ "\n" ^ body));
  expect_corrupt "future version"
    (Codec.decode_result ("range-synopsis 9\n" ^ body))

(* The fuzzer: random bit flips, truncations, line duplications and
   deletions over a valid v2 file.  Every mutant must either decode to
   bit-identical estimates or fail with a typed Corrupt_synopsis —
   never any other error, and never an exception. *)
let test_codec_corruption_fuzzer () =
  let s = Lazy.force base_synopsis in
  let reference = all_estimates s in
  let base = Codec.to_string s in
  let rng = Rng.create 0xBADC0DE in
  let mutate () =
    match Rng.int rng 4 with
    | 0 ->
        (* flip one random bit of one random byte *)
        let b = Bytes.of_string base in
        let i = Rng.int rng (Bytes.length b) in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8)));
        Bytes.to_string b
    | 1 -> String.sub base 0 (Rng.int rng (String.length base))
    | 2 ->
        let lines = String.split_on_char '\n' base in
        let k = Rng.int rng (List.length lines) in
        String.concat "\n"
          (List.concat (List.mapi (fun i l -> if i = k then [ l; l ] else [ l ]) lines))
    | _ ->
        let lines = String.split_on_char '\n' base in
        let k = Rng.int rng (List.length lines) in
        String.concat "\n"
          (List.concat (List.mapi (fun i l -> if i = k then [] else [ l ]) lines))
  in
  let escaped = ref 0 and wrong_class = ref 0 and silent = ref 0 in
  for _ = 1 to 600 do
    let mutant = mutate () in
    match Codec.decode_result mutant with
    | Ok s' ->
        (* Only acceptable if the mutation was semantically a no-op. *)
        if
          not
            (List.length reference = List.length (all_estimates s')
            && List.for_all2 Float.equal reference (all_estimates s'))
        then incr silent
    | Error (Error.Corrupt_synopsis _) -> ()
    | Error _ -> incr wrong_class
    | exception _ -> incr escaped
  done;
  Alcotest.(check int) "uncaught exceptions" 0 !escaped;
  Alcotest.(check int) "wrong error class" 0 !wrong_class;
  Alcotest.(check int) "undetected corruption" 0 !silent

let test_codec_fault_seams () =
  let s = Lazy.force base_synopsis in
  Faults.with_faults [ "codec.decode" ] (fun () ->
      expect_corrupt "decode seam" (Codec.decode_result (Codec.to_string s)));
  let path = tmp_file ".rs" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Codec.save s path;
      Faults.with_faults [ "codec.load" ] (fun () ->
          match Codec.load_result path with
          | Error (Error.Io_failure _) -> ()
          | _ -> Alcotest.fail "load seam should be a typed Io_failure");
      Faults.with_faults [ "codec.save" ] (fun () ->
          match Codec.save s path with
          | exception Faults.Injected _ -> ()
          | () -> Alcotest.fail "save seam did not fire"))

(* --- the degradation ladder --- *)

let ladder_ds = lazy (Dataset.generate "zipf-64")

let rung_names staged = List.map (fun a -> a.Opt_a.rung) staged.Opt_a.attempts

let check_result_sse name (r : Opt_a.result) p =
  Helpers.check_close ~tol:1e-6 name r.Opt_a.sse
    (Rs_query.Error.sse_all_ranges p (Helpers.hist_estimator r.Opt_a.histogram))

let test_ladder_healthy_path () =
  Faults.reset ();
  let ds = Lazy.force ladder_ds in
  let staged = Opt_a.build_governed (Dataset.prefix ds) ~buckets:6 in
  Alcotest.(check string) "delivers the exact rung" "opt-a" staged.Opt_a.delivered;
  Alcotest.(check bool) "not degraded" false staged.Opt_a.degraded;
  check_result_sse "sse is brute-force exact" staged.Opt_a.result
    (Dataset.prefix ds)

let test_ladder_exact_rung_faulted () =
  let ds = Lazy.force ladder_ds in
  let staged =
    Faults.with_faults [ "opt_a.exact" ] (fun () ->
        Opt_a.build_governed (Dataset.prefix ds) ~buckets:6)
  in
  Alcotest.(check string) "falls to the first grid" "opt-a-rounded(x=8)"
    staged.Opt_a.delivered;
  Alcotest.(check bool) "flagged degraded" true staged.Opt_a.degraded;
  (match staged.Opt_a.attempts with
  | { Opt_a.rung = "opt-a"; outcome = Opt_a.Faulted reason; _ } :: _ ->
      Alcotest.(check bool) "reason names the seam" true
        (Helpers.contains reason "opt_a.exact")
  | _ -> Alcotest.fail "first attempt should record the injected fault");
  check_result_sse "degraded result still brute-force consistent"
    staged.Opt_a.result (Dataset.prefix ds)

let test_ladder_falls_to_a0 () =
  let ds = Lazy.force ladder_ds in
  let staged =
    Faults.with_faults [ "opt_a.exact"; "opt_a.rounded" ] (fun () ->
        Opt_a.build_governed (Dataset.prefix ds) ~buckets:6)
  in
  Alcotest.(check string) "floor rung" "a0" staged.Opt_a.delivered;
  Alcotest.(check (list string))
    "every rung recorded, in ladder order"
    [ "opt-a"; "opt-a-rounded(x=8)"; "opt-a-rounded(x=32)";
      "opt-a-rounded(x=128)"; "a0" ]
    (rung_names staged);
  List.iter
    (fun a ->
      match (a.Opt_a.rung, a.Opt_a.outcome) with
      | "a0", Opt_a.Completed _ -> ()
      | "a0", o ->
          Alcotest.failf "a0 should complete, got %s" (Opt_a.describe_outcome o)
      | _, Opt_a.Faulted _ -> ()
      | r, o ->
          Alcotest.failf "%s should record the fault, got %s" r
            (Opt_a.describe_outcome o))
    staged.Opt_a.attempts;
  check_result_sse "a0 sse brute-force consistent" staged.Opt_a.result
    (Dataset.prefix ds)

let test_ladder_total_failure () =
  let ds = Lazy.force ladder_ds in
  (match
     Faults.with_faults [ "opt_a.exact"; "opt_a.rounded"; "ladder.a0" ]
       (fun () -> Opt_a.build_governed (Dataset.prefix ds) ~buckets:6)
   with
  | exception Opt_a.All_rungs_failed attempts ->
      Alcotest.(check int) "all five rungs attempted" 5 (List.length attempts)
  | _ -> Alcotest.fail "expected All_rungs_failed");
  (* The same total failure must surface as a typed error, not an
     exception, at the builder boundary. *)
  Faults.with_faults [ "opt_a.exact"; "opt_a.rounded"; "ladder.a0" ] (fun () ->
      match Builder.build_result ds ~method_name:"opt-a" ~budget_words:12 with
      | Error e -> Alcotest.(check int) "exit code" 2 (Error.exit_code e)
      | Ok _ -> Alcotest.fail "builder should report the dead ladder")

let test_ladder_timeout_degrades_not_errors () =
  let ds = Lazy.force ladder_ds in
  let g = Governor.create ~deadline:0.001 () in
  spin_until_expired g;
  (* Expired governor: exact and rounded rungs all time out, yet the
     ungoverned A0 floor still delivers. *)
  let staged = Opt_a.build_governed ~governor:g (Dataset.prefix ds) ~buckets:6 in
  Alcotest.(check string) "floor delivers" "a0" staged.Opt_a.delivered;
  List.iter
    (fun a ->
      match (a.Opt_a.rung, a.Opt_a.outcome) with
      | "a0", Opt_a.Completed _ | _, Opt_a.Timed_out _ -> ()
      | r, o ->
          Alcotest.failf "%s should time out, got %s" r
            (Opt_a.describe_outcome o))
    staged.Opt_a.attempts

(* The acceptance scenario: a tiny state budget plus a 10 ms deadline on
   zipf-1024 must still produce a synopsis, via a lower rung, with every
   attempted rung named in the report. *)
let test_builder_degrades_under_pressure () =
  let ds = Dataset.generate "zipf-1024" in
  let options = { Builder.default_options with opt_a_max_states = 500 } in
  match
    Builder.build_result ~options ~deadline:0.01 ds ~method_name:"opt-a"
      ~budget_words:32
  with
  | Error e -> Alcotest.failf "should degrade, not fail: %s" (Error.to_string e)
  | Ok { Builder.report = None; _ } -> Alcotest.fail "opt-a must carry a report"
  | Ok { Builder.synopsis; report = Some r } ->
      Alcotest.(check string) "requested" "opt-a" r.Builder.requested;
      Alcotest.(check bool) "degraded" true (r.Builder.delivered <> "opt-a");
      Alcotest.(check (list string))
        "report names every rung"
        [ "opt-a"; "opt-a-rounded(x=8)"; "opt-a-rounded(x=32)";
          "opt-a-rounded(x=128)"; "a0" ]
        (List.map (fun a -> a.Opt_a.rung) r.Builder.attempts);
      Alcotest.(check bool) "synopsis is usable" true
        (Float.is_finite (Synopsis.estimate synopsis ~a:1 ~b:1024));
      Alcotest.(check bool) "report renders" true
        (List.length (Builder.report_lines r) >= 6)

let test_builder_single_rung_timeout () =
  let ds = Lazy.force ladder_ds in
  let g = Governor.create ~deadline:0.001 () in
  spin_until_expired g;
  let options = { Builder.default_options with governor = g } in
  match Builder.build_result ~options ds ~method_name:"sap0" ~budget_words:12 with
  | Error (Error.Timeout _ as e) ->
      Alcotest.(check int) "exit code 4" 4 (Error.exit_code e)
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "non-laddered method has no floor to fall to"

let test_builder_result_boundaries () =
  let ds = Lazy.force ladder_ds in
  (match Builder.build_result ds ~method_name:"sap0" ~budget_words:12 with
  | Ok { Builder.report = None; synopsis } ->
      Alcotest.(check string) "name" "sap0" (Synopsis.name synopsis)
  | Ok _ -> Alcotest.fail "single-rung methods carry no report"
  | Error e -> Alcotest.failf "sap0 failed: %s" (Error.to_string e));
  (match Builder.build_result ds ~method_name:"bogus" ~budget_words:12 with
  | Error (Error.Unknown_method { name = "bogus"; known }) ->
      Alcotest.(check bool) "known list populated" true (List.length known > 5)
  | _ -> Alcotest.fail "expected Unknown_method");
  let floats = Dataset.of_floats [| 1.5; 2.25; 0.75; 3.5 |] in
  match Builder.build_result floats ~method_name:"opt-a" ~budget_words:12 with
  | Error (Error.Invalid_input _) -> ()
  | _ -> Alcotest.fail "opt-a on non-integral data should be Invalid_input"

let () =
  Alcotest.run "robustness"
    [
      ( "error",
        [
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "messages locate" `Quick
            test_to_string_mentions_location;
          Alcotest.test_case "guard conversions" `Quick test_guard_conversions;
          Alcotest.test_case "get" `Quick test_error_get;
        ] );
      ( "faults",
        [
          Alcotest.test_case "arm/trip/disarm" `Quick test_faults_basics;
          Alcotest.test_case "count-limited" `Quick test_faults_count_limited;
          Alcotest.test_case "with_faults resets" `Quick
            test_with_faults_resets_on_exception;
        ] );
      ( "governor",
        [
          Alcotest.test_case "basics" `Quick test_governor_basics;
          Alcotest.test_case "dp honours deadline" `Quick
            test_dp_honours_governor;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "crlf + trailing blanks" `Quick
            test_load_crlf_and_trailing_blanks;
          Alcotest.test_case "empty file" `Quick test_load_empty_file;
          Alcotest.test_case "comments only" `Quick test_load_comments_only;
          Alcotest.test_case "offending line" `Quick
            test_load_reports_offending_line;
          Alcotest.test_case "missing file" `Quick test_load_missing_file;
          Alcotest.test_case "load fault seam" `Quick test_load_fault_injection;
          Alcotest.test_case "validate reject" `Quick test_validate_reject;
          Alcotest.test_case "validate clamp" `Quick test_validate_clamp;
          Alcotest.test_case "validate repair" `Quick test_validate_repair;
          Alcotest.test_case "load honours policy" `Quick
            test_load_policy_applies;
        ] );
      ( "codec",
        roundtrip_tests
        @ [
            Alcotest.test_case "crlf tolerated" `Quick test_codec_crlf_tolerated;
            Alcotest.test_case "detects tampering" `Quick
              test_codec_detects_tampering;
            Alcotest.test_case "crc line abuse" `Quick test_codec_bad_crc_line;
            Alcotest.test_case "corruption fuzzer" `Quick
              test_codec_corruption_fuzzer;
            Alcotest.test_case "fault seams" `Quick test_codec_fault_seams;
          ] );
      ( "ladder",
        [
          Alcotest.test_case "healthy path" `Quick test_ladder_healthy_path;
          Alcotest.test_case "exact rung faulted" `Quick
            test_ladder_exact_rung_faulted;
          Alcotest.test_case "falls to a0" `Quick test_ladder_falls_to_a0;
          Alcotest.test_case "total failure" `Quick test_ladder_total_failure;
          Alcotest.test_case "timeout degrades" `Quick
            test_ladder_timeout_degrades_not_errors;
          Alcotest.test_case "acceptance: budget+deadline" `Quick
            test_builder_degrades_under_pressure;
          Alcotest.test_case "single-rung timeout" `Quick
            test_builder_single_rung_timeout;
          Alcotest.test_case "builder boundaries" `Quick
            test_builder_result_boundaries;
        ] );
    ]
