(* The monotone divide-and-conquer DP engine (PR 4) and the O(n)
   evaluation fast path, tested against their brute-force twins.

   Engine twins: on sorted inputs every QI-certified cost must give the
   level engine's result back from the D&C engine — same optimal cost
   always, and the same bucketing unless the instance has a genuine tie
   (two bucketings with equal total cost), which float noise may break
   either way; when bucketings differ we therefore re-evaluate both
   under the cost function and require the totals to agree.

   Fast-path twins: Synopsis.sse (prefix/two-sided/piecewise closed
   forms) must equal Synopsis.sse_sweep (the O(n²) enumeration) for
   every synopsis representation the builder can produce.

   Certification matters: a hardcoded instance shows the D&C engine
   mis-optimizing the (non-QI) SAP0 cost by ~3.8%, and the dispatch
   layer refusing to let it. *)

module Prefix = Rs_util.Prefix
module Error = Rs_util.Error
module Governor = Rs_util.Governor
module Rng = Rs_dist.Rng
module Cost = Rs_histogram.Cost
module Dp = Rs_histogram.Dp
module Bucket = Rs_histogram.Bucket
module H = Rs_histogram.Histogram
module Dataset = Rs_core.Dataset
module Builder = Rs_core.Builder
module Synopsis = Rs_core.Synopsis
module Qerr = Rs_query.Error

(* --- sorted-instance generator --- *)

(* Sorted data, both directions, three value profiles (ties-heavy small
   ints, continuous, spiky) — the same families the certification
   campaign used. *)
let sorted_data rng ~n ~kind =
  let d =
    Array.init n (fun _ ->
        match kind mod 3 with
        | 0 -> float_of_int (Rng.int rng 8)
        | 1 -> Rng.float rng *. 100.
        | _ -> if Rng.int rng 6 = 0 then Rng.float rng *. 1000. else Rng.float rng *. 3.)
  in
  Array.sort compare d;
  if kind >= 3 then begin
    let m = Array.length d in
    for i = 0 to (m / 2) - 1 do
      let t = d.(i) in
      d.(i) <- d.(m - 1 - i);
      d.(m - 1 - i) <- t
    done
  end;
  d

let total_of_bucketing cost bk =
  let acc = ref 0. in
  for k = 0 to Bucket.count bk - 1 do
    let l, r = Bucket.bounds bk k in
    acc := !acc +. cost ~l ~r
  done;
  !acc

let certified_costs ctx : (string * (l:int -> r:int -> float)) list =
  [
    ("point-w", Cost.point_range_weighted ctx);
    ("point-u", Cost.point_unweighted ctx);
    ("a0-prefix", Cost.a0_prefix ctx);
  ]

(* One twin case: both engines on one instance, for [solve] and
   [solve_exact_buckets] alike. *)
let twin_case name cost ~n ~buckets =
  List.iter
    (fun (variant, level, mono) ->
      let a : Dp.result = level () and b : Dp.result = mono () in
      let scale = Float.max 1. (abs_float a.Dp.cost) in
      if abs_float (a.Dp.cost -. b.Dp.cost) /. scale > 1e-9 then
        Alcotest.failf "%s %s n=%d B=%d: level cost %.17g <> monotone %.17g"
          name variant n buckets a.Dp.cost b.Dp.cost;
      if a.Dp.bucketing <> b.Dp.bucketing then begin
        (* Must be a genuine tie: both bucketings equally good. *)
        let ta = total_of_bucketing cost a.Dp.bucketing in
        let tb = total_of_bucketing cost b.Dp.bucketing in
        let scale = Float.max 1. (abs_float ta) in
        if abs_float (ta -. tb) /. scale > 1e-9 then
          Alcotest.failf
            "%s %s n=%d B=%d: bucketings differ and are not tied (%.17g vs %.17g)"
            name variant n buckets ta tb
      end)
    [
      ( "solve",
        (fun () -> Dp.solve ~n ~buckets ~cost ()),
        fun () -> Dp.solve_monotone ~n ~buckets ~cost () );
      ( "exact",
        (fun () -> Dp.solve_exact_buckets ~n ~buckets ~cost ()),
        fun () -> Dp.solve_monotone_exact_buckets ~n ~buckets ~cost () );
    ]

(* >= 500 randomized twin instances per certified cost (each instance
   exercises both solve variants). *)
let prop_engine_twin (name, pick) =
  Helpers.qtest ~count:500 (Printf.sprintf "monotone = level (%s, sorted)" name)
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create (seed + 1) in
      let n = 2 + Rng.int rng 70 in
      let kind = Rng.int rng 6 in
      let data = sorted_data rng ~n ~kind in
      let ctx = Cost.make (Prefix.create data) in
      assert (Cost.data_sorted ctx);
      let cost = pick ctx in
      let buckets = 1 + Rng.int rng 10 in
      twin_case name cost ~n ~buckets;
      true)

let engine_twin_props =
  List.map prop_engine_twin
    [
      ("point-w", fun ctx -> Cost.point_range_weighted ctx);
      ("point-u", fun ctx -> Cost.point_unweighted ctx);
      ("a0-prefix", fun ctx -> Cost.a0_prefix ctx);
    ]

(* Small-n exhaustive-ish twin over the shared datasets, including the
   unsorted ones via an explicit sort. *)
let test_twin_small_datasets () =
  List.iter
    (fun (dname, data) ->
      let data = Array.copy data in
      Array.sort compare data;
      let n = Array.length data in
      let ctx = Cost.make (Prefix.create data) in
      List.iter
        (fun (cname, cost) ->
          for buckets = 1 to min n 6 do
            twin_case (dname ^ "/" ^ cname) cost ~n ~buckets
          done)
        (certified_costs ctx))
    Helpers.small_datasets

(* --- certification is load-bearing ---

   A concrete instance (found by randomized search, pinned here) where
   the D&C recursion on the non-QI SAP0 cost commits to a wrong argmin
   split and returns a ~3.8% worse partition.  This is the direct
   demonstration that the sorted-data certificate table cannot be
   extended to sap0/sap1/a0 — and why Auto keeps them on the level
   engine. *)
let sap0_counterexample =
  [|
    0x1.0c9642878eca7p+2; 0x1.81e2b772121dp-5; 0x1.62e7a220bfab9p-1;
    0x1.a901c2bd55e85p+1; 0x1.73ee33733f658p+6; 0x1.1a83a0d0a1789p+2;
    0x1.37ec0b4d2533dp+1; 0x1.38134b68a9242p+2; 0x1.0d04ecf3c97cp+2;
    0x1.8086425207b24p+1; 0x1.ca96f8188863ep+9; 0x1.5c5a34f608434p-2;
    0x1.f7ce03d25431bp+1; 0x1.6b15a97131fe3p+9; 0x1.4c399187f15f4p+1;
    0x1.51b20e386d7a5p+1; 0x1.b4af59b56d389p+0; 0x1.7f1d22e1a9271p+5;
    0x1.6ea78f71833fap+0; 0x1.30d47c1d98b8ap+0; 0x1.c0d39eb8c43a7p+8;
    0x1.1765b183a5b2ep+1; 0x1.7b0677746eeddp+0; 0x1.d16e27a96ff3p+0;
    0x1.1568f9299d80ep-1;
  |]

let test_non_qi_cost_misoptimizes () =
  let n = Array.length sap0_counterexample in
  let ctx = Cost.make (Prefix.create sap0_counterexample) in
  let cost = Cost.sap0_bucket ctx in
  let level = Dp.solve ~n ~buckets:3 ~cost () in
  let mono = Dp.solve_monotone ~n ~buckets:3 ~cost () in
  if mono.Dp.cost <= level.Dp.cost *. (1. +. 1e-6) then
    Alcotest.failf
      "expected the D&C engine to mis-optimize sap0 here (level %.17g, mono %.17g)"
      level.Dp.cost mono.Dp.cost;
  (* The D&C result is still a real partition — just not the optimal
     one; its reported cost must at least be its own partition's cost. *)
  Helpers.check_close ~tol:1e-9 "mono self-consistent"
    (total_of_bucketing cost mono.Dp.bucketing)
    mono.Dp.cost

(* SAP1's cost violates the QI *on sorted data* — the (n−r)/(l−1)
   endpoint weights break it, so sortedness is not a valid certificate
   for it (unlike the point costs and a0_prefix).  On sorted-zipf-1023
   the D&C engine commits to a boundary one off from the optimum and
   lands ~4.5e-5 rel worse; this test pins that fact, which is why
   [Sap1.build] passes [certified:false]. *)
let test_sap1_sorted_misoptimizes () =
  let ds = Dataset.generate "sorted-zipf-1023" in
  let p = Dataset.prefix ds in
  let ctx = Cost.make p in
  assert (Cost.data_sorted ctx);
  let cost = Cost.sap1_bucket ctx in
  let n = Rs_util.Prefix.n p in
  let level = Dp.solve ~n ~buckets:12 ~cost () in
  let mono = Dp.solve_monotone ~n ~buckets:12 ~cost () in
  if mono.Dp.cost <= level.Dp.cost *. (1. +. 1e-8) then
    Alcotest.failf
      "expected the D&C engine to mis-optimize sap1 on sorted data (level \
       %.17g, mono %.17g)"
      level.Dp.cost mono.Dp.cost;
  Helpers.check_close ~tol:1e-9 "mono self-consistent"
    (total_of_bucketing cost mono.Dp.bucketing)
    mono.Dp.cost

(* --- dispatch: certificates, refusals, fallbacks --- *)

let expect_invalid_input what f =
  match Error.guard f with
  | Error (Error.Invalid_input _) -> ()
  | Error e ->
      Alcotest.failf "%s: expected Invalid_input, got %s" what (Error.to_string e)
  | Ok _ -> Alcotest.failf "%s: expected Invalid_input, got success" what

let test_use_monotone () =
  Alcotest.(check bool) "level never" false
    (Dp.use_monotone ~engine:Dp.Level ~certified:true ~jobs:1 ~stage:"t");
  Alcotest.(check bool) "auto certified sequential" true
    (Dp.use_monotone ~engine:Dp.Auto ~certified:true ~jobs:1 ~stage:"t");
  Alcotest.(check bool) "auto uncertified" false
    (Dp.use_monotone ~engine:Dp.Auto ~certified:false ~jobs:1 ~stage:"t");
  Alcotest.(check bool) "auto parallel" false
    (Dp.use_monotone ~engine:Dp.Auto ~certified:true ~jobs:4 ~stage:"t");
  Alcotest.(check bool) "monotone honored" true
    (Dp.use_monotone ~engine:Dp.Monotone ~certified:true ~jobs:1 ~stage:"t");
  expect_invalid_input "monotone uncertified" (fun () ->
      ignore (Dp.use_monotone ~engine:Dp.Monotone ~certified:false ~jobs:1 ~stage:"t"));
  expect_invalid_input "monotone parallel" (fun () ->
      ignore (Dp.use_monotone ~engine:Dp.Monotone ~certified:true ~jobs:2 ~stage:"t"))

(* Auto on an unsorted input must fall back to the level engine for
   every method — bit-identical synopses. *)
let prop_auto_fallback_unsorted =
  Helpers.qtest ~count:120 "auto = level on unsorted inputs"
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create (seed + 7) in
      let n = 8 + Rng.int rng 40 in
      (* Interior spike: reliably unsorted. *)
      let data =
        Array.init n (fun i ->
            if i = n / 2 then 1000. else float_of_int (Rng.int rng 10))
      in
      let p = Prefix.create data in
      let buckets = 1 + Rng.int rng 6 in
      assert (not (Cost.data_sorted (Cost.make p)));
      List.for_all
        (fun build ->
          let a : H.t = build Dp.Auto p ~buckets in
          let b : H.t = build Dp.Level p ~buckets in
          H.bucketing a = H.bucketing b)
        [
          (fun engine p ~buckets -> Rs_histogram.Vopt.build ~engine p ~buckets);
          (fun engine p ~buckets -> Rs_histogram.Sap0.build ~engine p ~buckets);
          (fun engine p ~buckets -> Rs_histogram.Sap1.build ~engine p ~buckets);
          (fun engine p ~buckets -> Rs_histogram.A0.build ~engine p ~buckets);
          (fun engine p ~buckets ->
            Rs_histogram.Prefix_opt.build ~engine p ~buckets);
        ])

(* Auto on a sorted input takes the monotone engine for certified
   methods; the synopsis must match the level engine's. *)
let prop_auto_upgrade_sorted =
  Helpers.qtest ~count:200 "auto = level on sorted inputs (certified methods)"
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create (seed + 13) in
      let n = 8 + Rng.int rng 50 in
      let data = sorted_data rng ~n ~kind:(Rng.int rng 6) in
      let p = Prefix.create data in
      let buckets = 1 + Rng.int rng 8 in
      List.for_all
        (fun (name, build) ->
          let a : H.t = build Dp.Auto p ~buckets in
          let b : H.t = build Dp.Level p ~buckets in
          if H.bucketing a = H.bucketing b then true
          else begin
            (* allow only genuine cost ties, as in the raw-engine twin *)
            let ctx = Cost.make p in
            let cost =
              match name with
              | "vopt" -> Cost.point_range_weighted ctx
              | _ -> Cost.a0_prefix ctx
            in
            Helpers.close ~tol:1e-9
              (total_of_bucketing cost (H.bucketing a))
              (total_of_bucketing cost (H.bucketing b))
          end)
        [
          ("vopt", fun engine p ~buckets -> Rs_histogram.Vopt.build ~engine p ~buckets);
          ("prefix-opt", fun engine p ~buckets ->
            Rs_histogram.Prefix_opt.build ~engine p ~buckets);
        ])

let test_explicit_monotone_refusals () =
  let rng = Rng.create 42 in
  let sorted = sorted_data rng ~n:32 ~kind:1 in
  let p_sorted = Prefix.create sorted in
  let unsorted = Array.init 32 (fun i -> if i = 16 then 500. else 1.) in
  let p_unsorted = Prefix.create unsorted in
  (* Uncertified method, even on sorted data. *)
  expect_invalid_input "sap0 + monotone" (fun () ->
      ignore (Rs_histogram.Sap0.build ~engine:Dp.Monotone p_sorted ~buckets:4));
  expect_invalid_input "a0 + monotone" (fun () ->
      ignore (Rs_histogram.A0.build ~engine:Dp.Monotone p_sorted ~buckets:4));
  expect_invalid_input "sap1 + monotone (non-QI even sorted)" (fun () ->
      ignore (Rs_histogram.Sap1.build ~engine:Dp.Monotone p_sorted ~buckets:4));
  (* Certified method, unsorted data. *)
  expect_invalid_input "vopt + monotone + unsorted" (fun () ->
      ignore (Rs_histogram.Vopt.build ~engine:Dp.Monotone p_unsorted ~buckets:4));
  (* Certified method + sorted data + jobs > 1. *)
  expect_invalid_input "vopt + monotone + jobs" (fun () ->
      ignore (Rs_histogram.Vopt.build ~engine:Dp.Monotone ~jobs:2 p_sorted ~buckets:4));
  (* And the happy path actually works. *)
  let h = Rs_histogram.Vopt.build ~engine:Dp.Monotone p_sorted ~buckets:4 in
  Alcotest.(check int) "monotone build delivers" 4 (H.buckets h)

let check_builder_error what r =
  match r with
  | Error (Error.Invalid_input _) -> ()
  | Error e ->
      Alcotest.failf "%s: expected Invalid_input, got %s" what (Error.to_string e)
  | Ok _ -> Alcotest.failf "%s: expected Invalid_input, got Ok" what

let test_builder_guards () =
  let ds = Dataset.generate "sorted-zipf-64" in
  let mono = { Builder.default_options with Builder.engine = Dp.Monotone } in
  check_builder_error "monotone + topbb"
    (Builder.build_result ~options:mono ds ~method_name:"topbb" ~budget_words:16);
  check_builder_error "monotone + opt-a"
    (Builder.build_result ~options:mono ds ~method_name:"opt-a" ~budget_words:16);
  check_builder_error "monotone + jobs"
    (Builder.build_result
       ~options:{ mono with Builder.jobs = 2 }
       ds ~method_name:"v-optimal" ~budget_words:16);
  let dir = Filename.temp_file "rs_monotone" "" in
  Sys.remove dir;
  check_builder_error "monotone + checkpoint"
    (Builder.build_result ~options:mono ~checkpoint_path:(Filename.concat dir "x.ckpt")
       ds ~method_name:"v-optimal" ~budget_words:16);
  (* Happy path through the builder. *)
  match
    Builder.build_result ~options:mono ds ~method_name:"v-optimal" ~budget_words:16
  with
  | Ok { Builder.synopsis; _ } ->
      Alcotest.(check string) "name" "v-optimal" (Synopsis.name synopsis)
  | Error e -> Alcotest.failf "monotone v-optimal: %s" (Error.to_string e)

(* The monotone engine respects the governor via Governor.check. *)
let test_monotone_deadline () =
  let rng = Rng.create 77 in
  let data = sorted_data rng ~n:400 ~kind:1 in
  let ctx = Cost.make (Prefix.create data) in
  let governor = Governor.create ~deadline:1e-9 () in
  match
    Dp.solve_monotone ~governor ~stage:"mono-test" ~n:400 ~buckets:12
      ~cost:(Cost.point_unweighted ctx) ()
  with
  | exception Governor.Deadline_exceeded { stage; _ } ->
      Alcotest.(check string) "stage" "mono-test" stage
  | _ -> Alcotest.fail "expected Deadline_exceeded from an expired governor"

(* --- evaluation fast path: closed forms = O(n²) sweep --- *)

let fastpath_methods =
  [
    "naive"; "equi-width"; "equi-depth"; "max-diff"; "point-opt"; "v-optimal";
    "a0"; "prefix-opt"; "sap0"; "sap1"; "opt-a"; "opt-a-rounded"; "a0-reopt";
    "equi-width-reopt"; "point-opt-reopt"; "topbb"; "topbb-rw";
    "wave-range-opt"; "wave-aa";
  ]

let prop_fastpath_equals_sweep =
  Helpers.qtest ~count:40 "Synopsis.sse = sse_sweep for every method"
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create (seed + 3) in
      let n = 8 + Rng.int rng 48 in
      let data = Array.init n (fun _ -> float_of_int (Rng.int rng 50)) in
      let ds = Dataset.of_floats ~name:"fastpath" data in
      let budget = 4 + Rng.int rng 20 in
      List.for_all
        (fun m ->
          match Builder.build_result ds ~method_name:m ~budget_words:budget with
          | Error e ->
              Alcotest.failf "%s: %s" m (Error.to_string e)
          | Ok { Builder.synopsis; _ } ->
              let fast = Synopsis.sse ds synopsis in
              let slow = Synopsis.sse_sweep ds synopsis in
              let ok = Helpers.close ~tol:1e-8 fast slow in
              if not ok then
                Printf.eprintf "%s: fast %.17g sweep %.17g\n" m fast slow;
              ok)
        fastpath_methods)

(* The raw closed forms, against direct enumeration on tiny inputs. *)
let prop_two_sided_form =
  Helpers.qtest ~count:300 "sse_two_sided_form = enumeration"
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create (seed + 5) in
      let n = 1 + Rng.int rng 20 in
      let p = Prefix.create (Array.init n (fun _ -> Rng.float rng *. 10.)) in
      let right = Array.init (n + 1) (fun _ -> Rng.float rng *. 30.) in
      let left = Array.init (n + 1) (fun _ -> Rng.float rng *. 30.) in
      let est ~a ~b = right.(b) -. left.(a - 1) in
      Helpers.close ~tol:1e-8
        (Qerr.sse_two_sided_form p ~right ~left)
        (Qerr.sse_all_ranges p est))

let prop_piecewise_form =
  Helpers.qtest ~count:300 "sse_piecewise_form = enumeration"
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create (seed + 11) in
      let n = 2 + Rng.int rng 20 in
      let p = Prefix.create (Array.init n (fun _ -> Rng.float rng *. 10.)) in
      let right = Array.init (n + 1) (fun _ -> Rng.float rng *. 30.) in
      let left = Array.init (n + 1) (fun _ -> Rng.float rng *. 30.) in
      (* random partition of [1, n] into windows with random values *)
      let cuts = ref [ n ] and i = ref n in
      while !i > 1 do
        if Rng.int rng 3 = 0 then cuts := (!i - 1) :: !cuts;
        decr i
      done;
      let windows =
        let lo = ref 1 in
        List.map
          (fun hi ->
            let w = (!lo, hi, Rng.float rng *. 5.) in
            lo := hi + 1;
            w)
          !cuts
        |> Array.of_list
      in
      let bucket_of t =
        let k = ref (-1) in
        Array.iteri (fun j (l, r, _) -> if t >= l && t <= r then k := j) windows;
        !k
      in
      let est ~a ~b =
        if bucket_of a = bucket_of b then
          let _, _, v = windows.(bucket_of a) in
          float_of_int (b - a + 1) *. v
        else right.(b) -. left.(a - 1)
      in
      Helpers.close ~tol:1e-8
        (Qerr.sse_piecewise_form p ~right ~left ~buckets:windows)
        (Qerr.sse_all_ranges p est))

(* Histogram lowerings answer exactly like Histogram.estimate. *)
let prop_lowering_matches_estimate =
  Helpers.qtest ~count:150 "lowering = estimate, per query"
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create (seed + 17) in
      let n = 4 + Rng.int rng 28 in
      let data = Array.init n (fun _ -> float_of_int (Rng.int rng 30)) in
      let p = Prefix.create data in
      let buckets = 1 + Rng.int rng 6 in
      let hists =
        [
          Rs_histogram.Vopt.build p ~buckets;
          Rs_histogram.Sap0.build p ~buckets;
          Rs_histogram.Sap1.build p ~buckets;
          Rs_histogram.Wsap0.build p
            (Rs_histogram.Wsap0.recency_weights ~n ~half_life:8.)
            ~buckets;
        ]
      in
      List.for_all
        (fun h ->
          match H.lowering h with
          | H.Opaque -> Alcotest.failf "%s: unexpectedly opaque" (H.name h)
          | H.Prefix_form d ->
              let ok = ref true in
              for a = 1 to n do
                for b = a to n do
                  if
                    not
                      (Helpers.close ~tol:1e-8 (H.estimate h ~a ~b)
                         (d.(b) -. d.(a - 1)))
                  then ok := false
                done
              done;
              !ok
          | H.Piecewise_form { right; left; windows } ->
              let bucket_of t =
                let k = ref (-1) in
                Array.iteri
                  (fun j (l, r, _) -> if t >= l && t <= r then k := j)
                  windows;
                !k
              in
              let ok = ref true in
              for a = 1 to n do
                for b = a to n do
                  let lowered =
                    if bucket_of a = bucket_of b then
                      let _, _, v = windows.(bucket_of a) in
                      float_of_int (b - a + 1) *. v
                    else right.(b) -. left.(a - 1)
                  in
                  if not (Helpers.close ~tol:1e-8 (H.estimate h ~a ~b) lowered)
                  then ok := false
                done
              done;
              !ok)
        hists)

let test_rounded_is_opaque () =
  let p = Prefix.create [| 1.; 4.; 2.; 8.; 5.; 7. |] in
  let h = Rs_histogram.Vopt.build p ~buckets:2 in
  let rounded = H.make ~rounded:true ~name:"r" (H.bucketing h) (H.repr h) in
  (match H.lowering rounded with
  | H.Opaque -> ()
  | _ -> Alcotest.fail "rounded histogram must be Opaque");
  Alcotest.(check bool) "no prefix vector" true (H.prefix_vector rounded = None);
  (* and the dispatch still measures it correctly, via the sweep *)
  let ds = Dataset.of_floats [| 1.; 4.; 2.; 8.; 5.; 7. |] in
  Helpers.check_close ~tol:1e-9 "opaque sse"
    (Synopsis.sse_sweep ds (Synopsis.Histogram rounded))
    (Synopsis.sse ds (Synopsis.Histogram rounded))

let test_prefix_vector_surface () =
  let ds = Dataset.generate "zipf-64" in
  let get m =
    match Builder.build_result ds ~method_name:m ~budget_words:16 with
    | Ok { Builder.synopsis; _ } -> synopsis
    | Error e -> Alcotest.failf "%s: %s" m (Error.to_string e)
  in
  let p = Dataset.prefix ds in
  (* Avg histograms and shared-prefix wavelets expose a vector whose
     prefix-form SSE matches the sweep; SAP and two-sided do not. *)
  List.iter
    (fun m ->
      match Synopsis.prefix_vector (get m) with
      | None -> Alcotest.failf "%s: expected a prefix vector" m
      | Some d ->
          Helpers.check_close ~tol:1e-8
            (m ^ " prefix vector")
            (Synopsis.sse_sweep ds (get m))
            (Qerr.sse_prefix_form p d))
    (* opt-a-rounded rounds its DP value grid, not its answers, so its
       output is a plain Avg histogram and keeps the vector *)
    [ "v-optimal"; "equi-width"; "opt-a"; "opt-a-rounded"; "wave-range-opt";
      "topbb" ];
  List.iter
    (fun m ->
      if Synopsis.prefix_vector (get m) <> None then
        Alcotest.failf "%s: unexpected prefix vector" m)
    [ "sap0"; "sap1"; "wave-aa" ]

(* --- kernel allocation discipline ---

   The level DP's hot state lives in flat Tabs (lib/histogram/dp.ml):
   the e/parent matrices are Bigarray blocks the minor GC never scans,
   and the per-level running-best scratch is allocated once.  With a
   cost closure that returns a captured (pre-boxed) float — so the cost
   calls themselves allocate nothing — a whole solve must allocate O(1)
   minor words per DP row: a per-transition or per-cell allocation in
   the kernel would show up as O(n²·B) words and trip the budget by two
   orders of magnitude. *)
let test_dp_solve_allocates_o1_per_row () =
  let n = 256 and buckets = 4 in
  let z = 0.5 in
  let cost ~l:_ ~r:_ = z in
  let run () = ignore (Dp.solve ~n ~buckets ~cost ()) in
  run () (* warm-up: one-time closure/setup allocations *);
  let before = Gc.minor_words () in
  run ();
  let delta = Gc.minor_words () -. before in
  let rows =
    let r = ref 0 in
    for k = 1 to buckets do
      r := !r + (n - k + 1)
    done;
    !r
  in
  (* Generous constants: Bigarray handles, the bucketing result and
     alcotest noise fit many times over, while one boxed float per
     transition alone would cost ~260k words here. *)
  let budget = 20_000. +. (64. *. float_of_int rows) in
  if delta > budget then
    Alcotest.failf
      "Dp.solve allocated %.0f minor words (budget %.0f for %d rows): the \
       kernel is allocating per cell or per transition"
      delta budget rows

let () =
  Alcotest.run "monotone"
    ([
       ( "engine-twins",
         engine_twin_props
         @ [
             Alcotest.test_case "small datasets, exhaustive B" `Quick
               test_twin_small_datasets;
             Alcotest.test_case "non-QI cost mis-optimizes" `Quick
               test_non_qi_cost_misoptimizes;
             Alcotest.test_case "sap1 mis-optimizes even sorted" `Quick
               test_sap1_sorted_misoptimizes;
           ] );
       ( "dispatch",
         [
           Alcotest.test_case "use_monotone matrix" `Quick test_use_monotone;
           prop_auto_fallback_unsorted;
           prop_auto_upgrade_sorted;
           Alcotest.test_case "explicit refusals" `Quick
             test_explicit_monotone_refusals;
           Alcotest.test_case "builder guards" `Quick test_builder_guards;
           Alcotest.test_case "governed deadline" `Quick test_monotone_deadline;
         ] );
       ( "fast-path",
         [
           prop_fastpath_equals_sweep;
           prop_two_sided_form;
           prop_piecewise_form;
           prop_lowering_matches_estimate;
           Alcotest.test_case "rounded is opaque" `Quick test_rounded_is_opaque;
           Alcotest.test_case "prefix_vector surface" `Quick
             test_prefix_vector_surface;
         ] );
       ( "kernel-alloc",
         [
           Alcotest.test_case "O(1) minor words per row" `Quick
             test_dp_solve_allocates_o1_per_row;
         ] );
     ])
