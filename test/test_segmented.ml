(* Fault-tolerant segmented builds: the Rs_query.Segments decomposition
   twins, the Segmented planners, and the Supervisor's robustness
   contract — retry/backoff, degradation ladders, kill-at-every-boundary
   resume sweeps, in-flight snapshot re-entry, manifest fuzzing, and the
   jobs determinism twin. *)

module Error = Rs_util.Error
module Faults = Rs_util.Faults
module Governor = Rs_util.Governor
module Prefix = Rs_util.Prefix
module Dataset = Rs_core.Dataset
module Builder = Rs_core.Builder
module Synopsis = Rs_core.Synopsis
module Store = Rs_core.Store
module Seg = Rs_core.Segmented
module Sup = Rs_core.Supervisor

let tmp_path suffix =
  let path = Filename.temp_file "rs_seg" suffix in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tmp_dir f =
  let dir = tmp_path ".segstore" in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let close ?(tol = 1e-6) a b =
  abs_float (a -. b) <= tol *. Float.max 1. (abs_float a +. abs_float b)

let check_close name a b =
  if not (close a b) then Alcotest.failf "%s: %.17g vs %.17g" name a b

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e)

(* --- the query-layer decomposition ------------------------------------ *)

(* The O(n + S) segmented SSE must equal the O(n²) sweep over the
   composed estimator, for every method mix and segment count. *)
let test_sse_decomposition_twin () =
  let ds = Dataset.generate "zipf-200" in
  List.iter
    (fun segments ->
      List.iter
        (fun method_name ->
          let plan = Seg.plan ~n:(Dataset.n ds) ~segments in
          let syns =
            Array.map
              (fun (lo, hi) ->
                Builder.build
                  (Seg.sub_dataset ds ~lo ~hi)
                  ~method_name ~budget_words:8)
              plan.Seg.bounds
          in
          let t = Seg.make ds plan syns in
          check_close
            (Printf.sprintf "%s x%d segments" method_name segments)
            (Seg.sse ds t) (Seg.sse_sweep ds t))
        [ "a0"; "sap0"; "equi-width"; "topbb" ])
    [ 1; 2; 3; 7 ]

(* One segment: the segmented estimator and SSE are exactly the
   monolithic synopsis's. *)
let test_single_segment_is_monolithic () =
  let ds = Dataset.generate "mixture-100" in
  let n = Dataset.n ds in
  let syn = Builder.build ds ~method_name:"a0" ~budget_words:12 in
  let t = Seg.make ds (Seg.plan ~n ~segments:1) [| syn |] in
  for a = 1 to n do
    let b = min n (a + 17) in
    check_close
      (Printf.sprintf "estimate [%d,%d]" a b)
      (Seg.estimate t ~a ~b)
      (Synopsis.estimate syn ~a ~b)
  done;
  check_close "sse" (Seg.sse ds t) (Synopsis.sse ds syn)

(* Cross-segment queries: interior segments contribute their exact
   totals, so a query spanning whole interior segments only errs at its
   two boundary segments. *)
let test_interior_segments_are_exact () =
  let ds = Dataset.generate "zipf-120" in
  let n = Dataset.n ds in
  let plan = Seg.plan ~n ~segments:4 in
  let syns =
    Array.map
      (fun (lo, hi) ->
        Builder.build (Seg.sub_dataset ds ~lo ~hi) ~method_name:"naive"
          ~budget_words:2)
      plan.Seg.bounds
  in
  let t = Seg.make ds plan syns in
  let p = Dataset.prefix ds in
  (* a whole-segment-aligned query is answered exactly from totals *)
  let lo1, _ = plan.Seg.bounds.(1) in
  let _, hi2 = plan.Seg.bounds.(2) in
  check_close "aligned query is exact"
    (Seg.estimate t ~a:lo1 ~b:hi2)
    (Prefix.range_sum p ~a:lo1 ~b:hi2)

let test_make_validation () =
  let ds = Dataset.generate "zipf-64" in
  let plan = Seg.plan ~n:64 ~segments:4 in
  let syn = Builder.build ds ~method_name:"naive" ~budget_words:2 in
  (match Error.guard (fun () -> Seg.make ds plan [| syn |]) with
  | Error (Error.Invalid_input _) -> ()
  | _ -> Alcotest.fail "wrong synopsis count must be rejected");
  match Error.guard (fun () -> Seg.plan ~n:8 ~segments:9) with
  | Error (Error.Invalid_input _) -> ()
  | _ -> Alcotest.fail "segments > n must be rejected"

(* --- planners --------------------------------------------------------- *)

let test_planner_invariants () =
  let plan = Seg.plan ~n:100 ~segments:7 in
  let wpu = Builder.words_per_unit "sap0" in
  let budget = 60 in
  let check_grants name grants =
    let s = Array.length plan.Seg.bounds in
    Alcotest.(check int) (name ^ ": one grant per segment") s
      (Array.length grants);
    let total = Array.fold_left ( + ) 0 grants in
    Alcotest.(check bool)
      (name ^ ": grants fit the budget minus stored totals")
      true
      (total <= budget - s);
    Array.iteri
      (fun i g ->
        let lo, hi = plan.Seg.bounds.(i) in
        Alcotest.(check bool)
          (Printf.sprintf "%s: seg %d floor" name i)
          true (g >= wpu);
        Alcotest.(check bool)
          (Printf.sprintf "%s: seg %d width cap" name i)
          true
          (g <= (hi - lo + 1) * wpu))
      grants
  in
  check_grants "uniform"
    (Seg.uniform_split plan ~method_name:"sap0" ~budget_words:budget);
  let price ~seg ~units = 1000. /. float_of_int ((seg + 1) * units) in
  let g1 = Seg.greedy_split ~price plan ~method_name:"sap0" ~budget_words:budget in
  let g2 = Seg.greedy_split ~price plan ~method_name:"sap0" ~budget_words:budget in
  check_grants "greedy" g1;
  Alcotest.(check (array int)) "greedy is deterministic" g1 g2;
  (* flat curve: no grant helps, everyone keeps the floor *)
  let flat = Seg.greedy_split ~price:(fun ~seg:_ ~units:_ -> 7.) plan
      ~method_name:"sap0" ~budget_words:budget
  in
  Array.iter (fun g -> Alcotest.(check int) "flat curve keeps floor" wpu g) flat;
  (* a budget that cannot cover the floors is a typed error *)
  match
    Error.guard (fun () ->
        Seg.uniform_split plan ~method_name:"sap0" ~budget_words:(7 * 3))
  with
  | Error (Error.Invalid_input _) -> ()
  | _ -> Alcotest.fail "underfunded split must be rejected"

(* The greedy planner must shift words toward the expensive segments. *)
let test_greedy_follows_the_error_curve () =
  let plan = Seg.plan ~n:40 ~segments:4 in
  (* segment 3 is catastrophically bad until it has 5 units *)
  let price ~seg ~units =
    if seg = 3 then if units >= 5 then 0. else 1e6 /. float_of_int units
    else 1. /. float_of_int units
  in
  let grants =
    Seg.greedy_split ~price plan ~method_name:"a0" ~budget_words:30
  in
  Alcotest.(check bool) "needy segment gets the most" true
    (Array.for_all (fun g -> grants.(3) >= g) grants)

(* --- backoff ---------------------------------------------------------- *)

let test_backoff_policy () =
  let policy = { Sup.Backoff.default with Sup.Backoff.cap = 0.1 } in
  for seg = 0 to 3 do
    for attempt = 1 to 12 do
      let d = Sup.Backoff.delay policy ~seg ~attempt in
      Alcotest.(check bool) "delay positive" true (d > 0.);
      Alcotest.(check bool) "delay capped" true (d <= policy.Sup.Backoff.cap);
      Alcotest.(check (float 0.)) "delay deterministic" d
        (Sup.Backoff.delay policy ~seg ~attempt)
    done
  done;
  (* jitter state is per-segment: first delays must not all coincide *)
  let d0 = Sup.Backoff.delay policy ~seg:0 ~attempt:1 in
  let distinct =
    List.exists
      (fun seg -> Sup.Backoff.delay policy ~seg ~attempt:1 <> d0)
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check bool) "jitter differs across segments" true distinct;
  (* a different seed moves the delays *)
  let reseeded = { policy with Sup.Backoff.seed = 99 } in
  Alcotest.(check bool) "seed changes the jitter" true
    (Sup.Backoff.delay reseeded ~seg:0 ~attempt:1 <> d0);
  match Sup.Backoff.delay policy ~seg:0 ~attempt:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "attempt 0 must be rejected"

(* --- the supervisor: healthy path ------------------------------------- *)

let build_bytes ?options ?policy ?sleep ?manifest_dir ?resume ?seg_poll_budget
    ?(planner = `Uniform) ?(method_name = "opt-a") ?(budget_words = 64)
    ?(segments = 8) ds =
  match
    Sup.build ?options ?policy ?sleep ?manifest_dir ?resume ?seg_poll_budget
      ~planner ds ~method_name ~budget_words ~segments
  with
  | Ok (t, report) -> (Seg.to_string t, report)
  | Error e -> Alcotest.failf "build failed: %s" (Error.to_string e)

let test_healthy_build_never_sleeps () =
  let ds = Dataset.generate "zipf-96" in
  let sleeps = ref [] in
  let sleep d = sleeps := d :: !sleeps in
  let _, report =
    build_bytes ~sleep ~method_name:"a0" ~budget_words:32 ~segments:4 ds
  in
  Alcotest.(check (list (float 0.))) "no sleeps on the healthy path" [] !sleeps;
  Alcotest.(check bool) "not degraded" false (Sup.degraded report);
  Array.iter
    (fun (s : Sup.seg_report) ->
      Alcotest.(check string) "delivered as requested" "a0" s.Sup.delivered;
      Alcotest.(check int) "no retries" 0 s.Sup.retries;
      Alcotest.(check bool) "nothing abandoned" true (s.Sup.abandoned = []))
    report.Sup.segs;
  Alcotest.(check bool) "storage within budget" true
    (report.Sup.storage_words <= report.Sup.budget_words)

(* --- retry and degradation -------------------------------------------- *)

let test_transient_faults_are_retried () =
  let ds = Dataset.generate "zipf-96" in
  let sleeps = ref [] in
  let sleep d = sleeps := !sleeps @ [ d ] in
  let policy = { Sup.Backoff.default with Sup.Backoff.retries = 3 } in
  Faults.arm ~count:2 "segment.build";
  Fun.protect ~finally:Faults.reset @@ fun () ->
  let _, report =
    build_bytes ~policy ~sleep ~method_name:"a0" ~budget_words:32 ~segments:4
      ds
  in
  Alcotest.(check bool) "not degraded" false (Sup.degraded report);
  Alcotest.(check int) "segment 0 retried twice" 2
    report.Sup.segs.(0).Sup.retries;
  Alcotest.(check int) "other segments untouched" 0
    report.Sup.segs.(1).Sup.retries;
  (* the recorded sleeps are exactly the policy's deterministic delays
     for segment 0 — backoff state is never shared across segments *)
  Alcotest.(check (list (float 0.)))
    "sleeps are the seeded per-segment delays"
    [
      Sup.Backoff.delay policy ~seg:0 ~attempt:1;
      Sup.Backoff.delay policy ~seg:0 ~attempt:2;
    ]
    !sleeps

let test_retries_exhaust_then_degrade () =
  let ds = Dataset.generate "zipf-128" in
  let sleeps = ref 0 in
  let sleep _ = incr sleeps in
  let policy = { Sup.Backoff.default with Sup.Backoff.retries = 0 } in
  (* two injected failures, zero retries: segment 0 burns its opt-a and
     opt-a-rounded rungs, then the a0 floor delivers *)
  Faults.arm ~count:2 "segment.build";
  Fun.protect ~finally:Faults.reset @@ fun () ->
  let _, report =
    build_bytes ~policy ~sleep ~method_name:"opt-a" ~budget_words:48
      ~segments:4 ds
  in
  Alcotest.(check bool) "degraded" true (Sup.degraded report);
  let s0 = report.Sup.segs.(0) in
  Alcotest.(check string) "segment 0 fell to the floor" "a0" s0.Sup.delivered;
  Alcotest.(check int) "both rungs abandoned" 2 (List.length s0.Sup.abandoned);
  List.iter
    (fun (rung, why) ->
      Alcotest.(check bool)
        (Printf.sprintf "abandoned %s names the injected fault" rung)
        true
        (String.length why >= 25
        && String.sub why 0 25 = "injected fault at segment"))
    s0.Sup.abandoned;
  Array.iteri
    (fun i (s : Sup.seg_report) ->
      if i > 0 then
        Alcotest.(check string)
          (Printf.sprintf "segment %d clean" i)
          "opt-a" s.Sup.delivered)
    report.Sup.segs;
  Alcotest.(check bool) "degraded build still fits the budget" true
    (report.Sup.storage_words <= report.Sup.budget_words);
  (* the aggregated report names the degraded segment and its reasons *)
  let lines = String.concat "\n" (Sup.report_lines report) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report names seg 0" true (contains lines "seg 0");
  Alcotest.(check bool) "report carries the reason" true
    (contains lines "injected fault at segment.build");
  Alcotest.(check bool) "report announces degradation" true
    (contains lines "DEGRADED")

let test_commit_seam_is_retried () =
  let ds = Dataset.generate "zipf-96" in
  with_tmp_dir @@ fun dir ->
  Faults.arm ~count:1 "segment.commit";
  Fun.protect ~finally:Faults.reset @@ fun () ->
  let sleeps = ref 0 in
  let bytes, report =
    build_bytes ~sleep:(fun _ -> incr sleeps) ~manifest_dir:dir
      ~method_name:"a0" ~budget_words:32 ~segments:4 ds
  in
  Alcotest.(check bool) "commit retried (one sleep)" true (!sleeps = 1);
  Alcotest.(check int) "retry recorded on segment 0" 1
    report.Sup.segs.(0).Sup.retries;
  (* the store holds every segment and a done manifest *)
  let store = Store.open_dir dir in
  Alcotest.(check int) "four entries" 4 (List.length (Store.list store));
  let body =
    match ok_or_fail (Store.load_build_manifest store) with
    | Some b -> b
    | None -> Alcotest.fail "no build manifest"
  in
  Alcotest.(check bool) "manifest records no pending segment" false
    (String.length body >= 7
    &&
    let rec has i =
      i + 7 <= String.length body
      && (String.sub body i 7 = "pending" || has (i + 1))
    in
    has 0);
  (* and an uninterrupted build without a store delivers the same bytes *)
  Faults.reset ();
  let bytes', _ = build_bytes ~method_name:"a0" ~budget_words:32 ~segments:4 ds in
  Alcotest.(check string) "bytes match the storeless build" bytes' bytes

let test_manifest_write_seam_is_retried () =
  let ds = Dataset.generate "zipf-96" in
  with_tmp_dir @@ fun dir ->
  Faults.arm ~count:1 "store.manifest";
  Fun.protect ~finally:Faults.reset @@ fun () ->
  let sleeps = ref 0 in
  let _, report =
    build_bytes ~sleep:(fun _ -> incr sleeps) ~manifest_dir:dir
      ~method_name:"a0" ~budget_words:32 ~segments:4 ds
  in
  Alcotest.(check bool) "manifest write retried" true (!sleeps >= 1);
  Alcotest.(check bool) "build completed clean" false (Sup.degraded report)

let test_atomic_seam_mid_manifest_is_retried () =
  let ds = Dataset.generate "zipf-96" in
  with_tmp_dir @@ fun dir ->
  Faults.arm ~count:1 "atomic.write";
  Fun.protect ~finally:Faults.reset @@ fun () ->
  let sleeps = ref 0 in
  let _, report =
    build_bytes ~sleep:(fun _ -> incr sleeps) ~manifest_dir:dir
      ~method_name:"a0" ~budget_words:32 ~segments:4 ds
  in
  Alcotest.(check bool) "atomic write retried" true (!sleeps >= 1);
  Alcotest.(check bool) "build completed clean" false (Sup.degraded report)

(* --- crash-safe resume ------------------------------------------------ *)

(* Kill the supervisor at EVERY segment boundary (deterministic
   poll-budget governor in Snapshot mode), resume, and require the
   final synopsis to match the uninterrupted build bit-for-bit.  The
   k-th boundary kill must find exactly k-1 committed segments. *)
let test_kill_at_every_boundary_and_resume () =
  let ds = Dataset.generate "zipf-256" in
  let segments = 8 in
  let baseline, _ = build_bytes ~segments ds in
  for k = 1 to segments + 1 do
    with_tmp_dir @@ fun dir ->
    let governor =
      Governor.create ~poll_budget:k ~deadline_mode:Governor.Snapshot ()
    in
    let options = { Builder.default_options with Builder.governor } in
    match
      Sup.build ~options ~manifest_dir:dir ~planner:`Uniform ds
        ~method_name:"opt-a" ~budget_words:64 ~segments
    with
    | Ok (t, _) ->
        Alcotest.(check bool)
          (Printf.sprintf "budget %d outlives all boundaries" k)
          true (k > segments);
        Alcotest.(check string) "uninterrupted run matches baseline" baseline
          (Seg.to_string t)
    | Error (Error.Interrupted { checkpoint; _ }) ->
        Alcotest.(check bool)
          (Printf.sprintf "kill %d leaves boundaries to cross" k)
          true
          (k <= segments);
        Alcotest.(check bool) "interruption points at the manifest" true
          (Filename.basename checkpoint = "BUILD");
        let bytes, report =
          build_bytes ~manifest_dir:dir ~resume:true ~segments ds
        in
        Alcotest.(check string)
          (Printf.sprintf "kill at boundary %d resumes bit-identically" k)
          baseline bytes;
        let resumed =
          Array.fold_left
            (fun acc (s : Sup.seg_report) ->
              if s.Sup.resumed then acc + 1 else acc)
            0 report.Sup.segs
        in
        Alcotest.(check int)
          (Printf.sprintf "kill %d skipped the committed segments" k)
          (k - 1) resumed
    | Error e -> Alcotest.failf "kill %d: unexpected %s" k (Error.to_string e)
  done

(* A hard abort (injected crash, no snapshot, no typed Interrupted)
   must still leave a resumable manifest behind. *)
let test_abort_seam_then_resume () =
  let ds = Dataset.generate "zipf-256" in
  let baseline, _ = build_bytes ds in
  with_tmp_dir @@ fun dir ->
  Faults.arm ~count:1 "supervisor.abort";
  (Fun.protect ~finally:Faults.reset @@ fun () ->
   match
     Sup.build ~manifest_dir:dir ~planner:`Uniform ds ~method_name:"opt-a"
       ~budget_words:64 ~segments:8
   with
   | Ok _ -> Alcotest.fail "armed abort must kill the build"
   | Error e ->
       Alcotest.(check bool) "abort surfaces as the injected fault" true
         (Error.is_injected e));
  let bytes, _ = build_bytes ~manifest_dir:dir ~resume:true ds in
  Alcotest.(check string) "post-crash resume matches baseline" baseline bytes

(* Kill INSIDE a segment's exact DP (deterministic per-segment poll
   budget): the supervisor surfaces Interrupted, the segment snapshot
   survives, and the resumed build re-enters the DP mid-flight and
   still delivers the baseline bytes. *)
let test_inflight_segment_snapshot_resume () =
  let ds = Dataset.generate "zipf-256" in
  let baseline, _ = build_bytes ds in
  (* Expiry during UB seeding degrades (by design — the seed pins the Λ
     cap), so small budgets complete degraded; the interrupt window is
     the exact DP's once-per-row polls (segment width = 32 rows).  A
     step-8 scan cannot jump over it. *)
  let interrupted_at = ref None in
  let b = ref 2 in
  while !interrupted_at = None && !b <= 600 do
    with_tmp_dir (fun dir ->
        match
          Sup.build ~manifest_dir:dir ~planner:`Uniform ~seg_poll_budget:!b ds
            ~method_name:"opt-a" ~budget_words:64 ~segments:8
        with
        | Error (Error.Interrupted { stage; _ }) ->
            let snapshots =
              Array.to_list (Sys.readdir dir)
              |> List.filter (fun f -> Filename.check_suffix f ".ckpt")
            in
            Alcotest.(check bool)
              (Printf.sprintf "budget %d wrote a segment snapshot" !b)
              true
              (List.length snapshots > 0);
            Alcotest.(check bool) "stage names the segment" true
              (String.length stage >= 9 && String.sub stage 0 9 = "segmented");
            let bytes, _ = build_bytes ~manifest_dir:dir ~resume:true ds in
            Alcotest.(check string)
              (Printf.sprintf "in-flight kill at budget %d resumes to baseline"
                 !b)
              baseline bytes;
            interrupted_at := Some !b
        | Ok _ | Error _ -> ());
    b := !b + 8
  done;
  match !interrupted_at with
  | Some _ -> ()
  | None -> Alcotest.fail "no poll budget interrupted a segment mid-DP"

(* Resuming against a manifest from a different build is refused with a
   typed corruption error, not silently mixed. *)
let test_resume_rejects_foreign_manifest () =
  let ds = Dataset.generate "zipf-256" in
  with_tmp_dir @@ fun dir ->
  let _ = build_bytes ~manifest_dir:dir ds in
  match
    Sup.build ~manifest_dir:dir ~resume:true ~planner:`Uniform ds
      ~method_name:"opt-a" ~budget_words:48 (* different budget *)
      ~segments:8
  with
  | Error (Error.Corrupt_checkpoint _) -> ()
  | Ok _ -> Alcotest.fail "foreign manifest must be refused"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)

(* --- manifest fuzzing ------------------------------------------------- *)

(* >= 300 mutants of the BUILD manifest bytes (bit flips, truncations,
   garbage appends).  Every one must either be caught by the CRC frame
   or the parser, quarantined, and rebuilt from scratch — the result is
   always the baseline bytes, never a crash, never a brick. *)
let test_manifest_fuzz () =
  let ds = Dataset.generate "zipf-64" in
  let segments = 4 and budget_words = 24 in
  let build ~resume dir =
    build_bytes ~manifest_dir:dir ~resume ~method_name:"a0" ~budget_words
      ~segments ds
  in
  with_tmp_dir @@ fun dir ->
  let baseline, _ = build ~resume:false dir in
  let store = Store.open_dir dir in
  let manifest_path = Store.build_manifest_path store in
  let pristine = read_file manifest_path in
  let rng = Random.State.make [| 0x5e6f |] in
  let len = String.length pristine in
  for i = 1 to 300 do
    let mutant =
      match Random.State.int rng 3 with
      | 0 ->
          (* flip one byte *)
          let pos = Random.State.int rng len in
          let b = Bytes.of_string pristine in
          Bytes.set b pos
            (Char.chr (Char.code (Bytes.get b pos) lxor (1 + Random.State.int rng 255)));
          Bytes.to_string b
      | 1 ->
          (* torn write: truncate *)
          String.sub pristine 0 (Random.State.int rng len)
      | _ ->
          (* trailing garbage *)
          pristine ^ String.init (1 + Random.State.int rng 16) (fun _ ->
              Char.chr (Random.State.int rng 256))
    in
    if mutant <> pristine then begin
      write_file manifest_path mutant;
      let bytes, _ = build ~resume:true dir in
      if bytes <> baseline then
        Alcotest.failf "mutant %d changed the rebuilt synopsis" i
    end
  done;
  (* the damaged manifests were quarantined, not deleted *)
  let qdir = Filename.concat dir "quarantine" in
  Alcotest.(check bool) "quarantine holds the damaged manifests" true
    (Sys.file_exists qdir && Array.length (Sys.readdir qdir) > 0)

(* --- determinism across job counts ------------------------------------ *)

let test_jobs_determinism_twin () =
  let ds = Dataset.generate "zipf-512" in
  let build jobs dir =
    let options = { Builder.default_options with Builder.jobs } in
    build_bytes ~options ~manifest_dir:dir ~method_name:"point-opt"
      ~budget_words:64 ~segments:6 ~planner:`Greedy ds
  in
  with_tmp_dir @@ fun dir1 ->
  with_tmp_dir @@ fun dir4 ->
  let bytes1, report1 = build 1 dir1 in
  let bytes4, report4 = build 4 dir4 in
  Alcotest.(check string) "synopsis bytes identical across jobs" bytes1 bytes4;
  let manifest dir =
    match ok_or_fail (Store.load_build_manifest (Store.open_dir dir)) with
    | Some body -> body
    | None -> Alcotest.fail "missing build manifest"
  in
  Alcotest.(check string) "manifest bytes identical across jobs"
    (manifest dir1) (manifest dir4);
  Alcotest.(check int) "same storage either way" report1.Sup.storage_words
    report4.Sup.storage_words;
  Array.iteri
    (fun i (s1 : Sup.seg_report) ->
      let s4 = report4.Sup.segs.(i) in
      Alcotest.(check string)
        (Printf.sprintf "seg %d delivered equal" i)
        s1.Sup.delivered s4.Sup.delivered;
      Alcotest.(check int)
        (Printf.sprintf "seg %d retries equal" i)
        s1.Sup.retries s4.Sup.retries)
    report1.Sup.segs

(* --- governor expiry formatting (satellite: describe_expiry) ----------- *)

(* A poll-budget expiry at a segment boundary must render poll counts,
   not fake seconds — everything goes through Governor.describe_expiry. *)
let test_poll_budget_expiry_renders_polls () =
  let ds = Dataset.generate "zipf-128" in
  let governor =
    Governor.create ~poll_budget:2 ~deadline_mode:Governor.Degrade ()
  in
  let options = { Builder.default_options with Builder.governor } in
  match
    Sup.build ~options ~planner:`Uniform ds ~method_name:"a0" ~budget_words:32
      ~segments:4
  with
  | Error (Error.Timeout { reason = Governor.Poll_budget; _ } as e) ->
      let rendered = Error.to_string e in
      let contains needle =
        let nh = String.length rendered and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub rendered i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "renders the poll-budget wording" true
        (contains "poll budget exhausted");
      Alcotest.(check bool) "renders poll counts" true (contains "polls")
  | Ok _ -> Alcotest.fail "poll budget must expire the build"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)

(* Without a manifest directory there is nothing to resume: the same
   expiry in Snapshot mode degrades to a Timeout, not an Interrupted
   pointing at nothing. *)
let test_expiry_without_store_is_timeout () =
  let ds = Dataset.generate "zipf-128" in
  let governor =
    Governor.create ~poll_budget:2 ~deadline_mode:Governor.Snapshot ()
  in
  let options = { Builder.default_options with Builder.governor } in
  match
    Sup.build ~options ~planner:`Uniform ds ~method_name:"a0" ~budget_words:32
      ~segments:4
  with
  | Error (Error.Timeout _) -> ()
  | Error (Error.Interrupted _) ->
      Alcotest.fail "no store: expiry must not claim to be resumable"
  | Ok _ -> Alcotest.fail "poll budget must expire the build"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)

let () =
  Alcotest.run "segmented"
    [
      ( "query",
        [
          Alcotest.test_case "sse decomposition twin" `Quick
            test_sse_decomposition_twin;
          Alcotest.test_case "single segment = monolithic" `Quick
            test_single_segment_is_monolithic;
          Alcotest.test_case "interior segments exact" `Quick
            test_interior_segments_are_exact;
          Alcotest.test_case "make validation" `Quick test_make_validation;
        ] );
      ( "planner",
        [
          Alcotest.test_case "invariants" `Quick test_planner_invariants;
          Alcotest.test_case "follows the error curve" `Quick
            test_greedy_follows_the_error_curve;
        ] );
      ( "backoff",
        [ Alcotest.test_case "cap, determinism, seeding" `Quick test_backoff_policy ] );
      ( "supervisor",
        [
          Alcotest.test_case "healthy path never sleeps" `Quick
            test_healthy_build_never_sleeps;
          Alcotest.test_case "transient faults retried" `Quick
            test_transient_faults_are_retried;
          Alcotest.test_case "retries exhaust, then degrade" `Quick
            test_retries_exhaust_then_degrade;
          Alcotest.test_case "commit seam retried" `Quick
            test_commit_seam_is_retried;
          Alcotest.test_case "manifest seam retried" `Quick
            test_manifest_write_seam_is_retried;
          Alcotest.test_case "atomic seam retried" `Quick
            test_atomic_seam_mid_manifest_is_retried;
        ] );
      ( "resume",
        [
          Alcotest.test_case "kill at every boundary" `Quick
            test_kill_at_every_boundary_and_resume;
          Alcotest.test_case "hard abort then resume" `Quick
            test_abort_seam_then_resume;
          Alcotest.test_case "in-flight segment snapshot" `Quick
            test_inflight_segment_snapshot_resume;
          Alcotest.test_case "foreign manifest refused" `Quick
            test_resume_rejects_foreign_manifest;
        ] );
      ( "fuzz",
        [ Alcotest.test_case "manifest mutants (300)" `Quick test_manifest_fuzz ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs=1 vs jobs=4 twin" `Quick
            test_jobs_determinism_twin;
        ] );
      ( "governor",
        [
          Alcotest.test_case "poll-budget expiry renders polls" `Quick
            test_poll_budget_expiry_renders_polls;
          Alcotest.test_case "expiry without store is a timeout" `Quick
            test_expiry_without_store_is_timeout;
        ] );
    ]
