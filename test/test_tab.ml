(* Flat unboxed tables ({!Rs_util.Tab}): checked/unsafe accessor
   semantics, the row-major 2-D layout contract, bit-exact dump/load,
   and bounds-checked Debug-twin runs of the kernel index arithmetic
   (the DP level sweep's hoisted row offsets and Prefix2d's four-corner
   reads), so an off-by-one in those address computations surfaces as
   [Invalid_argument] here rather than as a silent out-of-range read in
   an [unsafe_*] kernel. *)

module Tab = Rs_util.Tab

(* Alcotest's check_raises wants the exact exception; the Checks
   messages vary, so match on the constructor instead. *)
let check_raises_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_f1_basics () =
  let t = Tab.f1_create 5 in
  Alcotest.(check int) "len" 5 (Tab.f1_len t);
  for i = 0 to 4 do
    Alcotest.(check (float 0.)) "zero-filled" 0. (Tab.f1_get t i)
  done;
  Tab.f1_set t 3 2.5;
  Alcotest.(check (float 0.)) "set/get" 2.5 (Tab.f1_get t 3);
  Tab.f1_fill t 7.;
  Alcotest.(check (float 0.)) "fill" 7. (Tab.f1_get t 0);
  check_raises_invalid "get -1" (fun () -> Tab.f1_get t (-1));
  check_raises_invalid "get len" (fun () -> Tab.f1_get t 5);
  check_raises_invalid "set len" (fun () -> Tab.f1_set t 5 0.);
  check_raises_invalid "negative create" (fun () -> Tab.f1_create (-1))

let test_i1_basics () =
  let t = Tab.i1_create 4 in
  Alcotest.(check int) "len" 4 (Tab.i1_len t);
  Tab.i1_fill t (-1);
  Alcotest.(check int) "fill" (-1) (Tab.i1_get t 2);
  Tab.i1_set t 2 41;
  Alcotest.(check int) "set/get" 41 (Tab.i1_get t 2);
  check_raises_invalid "get oob" (fun () -> Tab.i1_get t 4)

let test_array_roundtrip () =
  let a = [| 1.5; -0.; infinity; neg_infinity; 3.14; 1e-308 |] in
  let t = Tab.f1_of_array a in
  let b = Tab.f1_to_array t in
  Alcotest.(check int) "length" (Array.length a) (Array.length b);
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "bit-equal" true
        (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float b.(i))))
    a;
  let ia = [| min_int; -1; 0; 1; max_int |] in
  Alcotest.(check (array int)) "int roundtrip" ia
    (Tab.i1_to_array (Tab.i1_of_array ia))

let test_blit () =
  let src = Tab.f1_of_array [| 1.; 2.; 3. |] in
  let dst = Tab.f1_create 3 in
  Tab.f1_blit ~src ~dst;
  Alcotest.(check (float 0.)) "blit" 2. (Tab.f1_get dst 1);
  let short = Tab.f1_create 2 in
  check_raises_invalid "length mismatch" (fun () -> Tab.f1_blit ~src ~dst:short)

let test_dump_load_bit_exact () =
  (* The same special values the snapshot writers must round-trip:
     negative zero, infinities, denormals and an irrational decimal are
     all bit-exact in %h.  (NaN payloads are not — %h renders plain
     "nan" — and no kernel table ever holds one.) *)
  let vals =
    [| 0.; -0.; 1.; -1.5; infinity; neg_infinity; 4.9e-324;
       1.7976931348623157e308; 0.1 |]
  in
  let t = Tab.f1_of_array vals in
  let t' = Tab.f1_load (Tab.f1_dump t) in
  Alcotest.(check int) "len" (Tab.f1_len t) (Tab.f1_len t');
  for i = 0 to Tab.f1_len t - 1 do
    Alcotest.(check bool) "bits" true
      (Int64.equal
         (Int64.bits_of_float (Tab.f1_get t i))
         (Int64.bits_of_float (Tab.f1_get t' i)))
  done;
  Alcotest.(check string) "empty dump" "" (Tab.f1_dump (Tab.f1_create 0));
  Alcotest.(check int) "empty load" 0 (Tab.f1_len (Tab.f1_load ""));
  let it = Tab.i1_of_array [| min_int; -7; 0; 7; max_int |] in
  Alcotest.(check (array int)) "int dump/load"
    (Tab.i1_to_array it)
    (Tab.i1_to_array (Tab.i1_load (Tab.i1_dump it)));
  check_raises_invalid "garbage load" (fun () -> Tab.f1_load "not-a-float")

let test_f2_layout () =
  (* The row-major layout is contractual: cell (r, c) lives at
     r * cols + c of the flat buffer — snapshot writers and the kernel
     sweeps both rely on it. *)
  let rows = 3 and cols = 4 in
  let t = Tab.f2_create ~rows ~cols in
  Alcotest.(check int) "rows" rows (Tab.f2_rows t);
  Alcotest.(check int) "cols" cols (Tab.f2_cols t);
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      Tab.f2_set t r c (float_of_int ((10 * r) + c))
    done
  done;
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      Alcotest.(check (float 0.)) "flat offset"
        (float_of_int ((10 * r) + c))
        (Tab.f1_get t.Tab.fbuf ((r * cols) + c))
    done
  done;
  check_raises_invalid "row oob" (fun () -> Tab.f2_get t rows 0);
  check_raises_invalid "col oob" (fun () -> Tab.f2_get t 0 cols);
  check_raises_invalid "negative dims" (fun () ->
      Tab.f2_create ~rows:(-1) ~cols:2)

let test_i2_layout () =
  let t = Tab.i2_create ~rows:2 ~cols:3 in
  Tab.i2_fill t (-1);
  Tab.i2_set t 1 2 9;
  Alcotest.(check int) "set/get" 9 (Tab.i2_get t 1 2);
  Alcotest.(check int) "flat offset" 9 (Tab.i1_get t.Tab.ibuf ((1 * 3) + 2));
  Alcotest.(check int) "fill" (-1) (Tab.i2_get t 0 0)

(* --- Debug twins of the kernel index arithmetic ---

   The DP level sweep hoists [prev = (k-1) * cols] and addresses row
   k-1 reads at [prev + i], row k writes at [prev + cols + i]
   (lib/histogram/dp.ml).  Re-run that arithmetic through the
   bounds-checked Debug accessors on a sweep of shapes, including the
   degenerate ones (one row, one column), and cross-check every cell
   against the checked 2-D accessors. *)
let test_debug_twin_dp_row_sweep () =
  List.iter
    (fun (rows, cols) ->
      let e = Tab.f2_create ~rows ~cols in
      let buf = e.Tab.fbuf in
      for c = 0 to cols - 1 do
        Tab.Debug.f1_unsafe_set buf c (float_of_int (c + 1))
      done;
      for k = 1 to rows - 1 do
        let prev = (k - 1) * cols in
        for i = 0 to cols - 1 do
          let v = Tab.Debug.f1_unsafe_get buf (prev + i) in
          Tab.Debug.f1_unsafe_set buf (prev + cols + i) (v *. 2.)
        done
      done;
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          Alcotest.(check (float 0.)) "sweep cell"
            (float_of_int (c + 1) *. Float.of_int (1 lsl r))
            (Tab.f2_get e r c)
        done
      done)
    [ (1, 1); (1, 7); (5, 1); (4, 6); (3, 64) ]

(* Prefix2d.range_sum's four-corner arithmetic: rb = b1 * cols,
   ra = (a1-1) * cols, reads at rb+b2, ra+b2, rb+(a2-1), ra+(a2-1)
   (lib/util/prefix2d.ml).  Exhaust every valid rectangle on a small
   grid through the Debug accessors and compare with a brute-force
   sum — both the bounds and the values are checked. *)
let test_debug_twin_prefix2d_corners () =
  let n1 = 4 and n2 = 5 in
  let a =
    Array.init n1 (fun i ->
        Array.init n2 (fun j -> float_of_int (((i * 31) + (j * 7)) mod 11)))
  in
  let d = Tab.f2_create ~rows:(n1 + 1) ~cols:(n2 + 1) in
  for i = 1 to n1 do
    for j = 1 to n2 do
      Tab.f2_set d i j
        (a.(i - 1).(j - 1)
        +. Tab.f2_get d (i - 1) j
        +. Tab.f2_get d i (j - 1)
        -. Tab.f2_get d (i - 1) (j - 1))
    done
  done;
  let buf = d.Tab.fbuf in
  let cols = n2 + 1 in
  for a1 = 1 to n1 do
    for b1 = a1 to n1 do
      for a2 = 1 to n2 do
        for b2 = a2 to n2 do
          let rb = b1 * cols and ra = (a1 - 1) * cols in
          let got =
            Tab.Debug.f1_unsafe_get buf (rb + b2)
            -. Tab.Debug.f1_unsafe_get buf (ra + b2)
            -. Tab.Debug.f1_unsafe_get buf (rb + (a2 - 1))
            +. Tab.Debug.f1_unsafe_get buf (ra + (a2 - 1))
          in
          let want = ref 0. in
          for i = a1 to b1 do
            for j = a2 to b2 do
              want := !want +. a.(i - 1).(j - 1)
            done
          done;
          Alcotest.(check (float 1e-9)) "corner sum" !want got
        done
      done
    done
  done

let test_debug_twin_bounds_catch () =
  (* The whole point of the twins: an out-of-range address raises. *)
  let t = Tab.f1_create 3 in
  check_raises_invalid "debug get oob" (fun () ->
      Tab.Debug.f1_unsafe_get t 3);
  check_raises_invalid "debug set oob" (fun () ->
      Tab.Debug.f1_unsafe_set t (-1) 0.);
  let m = Tab.f2_create ~rows:2 ~cols:2 in
  check_raises_invalid "debug f2 oob" (fun () ->
      Tab.Debug.f2_unsafe_get m 2 0);
  let im = Tab.i2_create ~rows:2 ~cols:2 in
  check_raises_invalid "debug i2 oob" (fun () ->
      Tab.Debug.i2_unsafe_set im 0 2 1)

let () =
  Alcotest.run "tab"
    [
      ( "accessors",
        [
          Alcotest.test_case "f1 basics" `Quick test_f1_basics;
          Alcotest.test_case "i1 basics" `Quick test_i1_basics;
          Alcotest.test_case "array roundtrip" `Quick test_array_roundtrip;
          Alcotest.test_case "blit" `Quick test_blit;
        ] );
      ( "dump-load",
        [ Alcotest.test_case "bit-exact" `Quick test_dump_load_bit_exact ] );
      ( "layout",
        [
          Alcotest.test_case "f2 row-major" `Quick test_f2_layout;
          Alcotest.test_case "i2 row-major" `Quick test_i2_layout;
        ] );
      ( "debug-twins",
        [
          Alcotest.test_case "dp row sweep" `Quick test_debug_twin_dp_row_sweep;
          Alcotest.test_case "prefix2d corners" `Quick
            test_debug_twin_prefix2d_corners;
          Alcotest.test_case "bounds catch" `Quick test_debug_twin_bounds_catch;
        ] );
    ]
