module H = Rs_histogram
module Bucket = H.Bucket
module Cost = H.Cost
module Exact_sse = H.Exact_sse
module Opt_a = H.Opt_a
module Prefix = Rs_util.Prefix
module Rng = Rs_dist.Rng

let min_over_bucketings ~n ~buckets f =
  List.fold_left
    (fun acc bk -> Float.min acc (f bk))
    Float.infinity
    (List.concat_map
       (fun b -> Bucket.enumerate ~n ~buckets:b)
       (List.init buckets (fun i -> i + 1)))

(* The heart of the reproduction: the pseudopolynomial DP finds the true
   optimum of the full range-SSE, cross terms included — checked against
   exhaustive search over all bucketings. *)
let test_exact_vs_exhaustive () =
  let rng = Rng.create 100 in
  for _trial = 1 to 12 do
    let n = 3 + Rng.int rng 8 in
    let data = Helpers.random_int_data rng ~n ~hi:12 in
    let p = Helpers.prefix_of data in
    let ctx = Cost.make p in
    for b = 1 to min 4 n do
      let { Opt_a.sse; _ } = Opt_a.build_exact p ~buckets:b in
      let best = min_over_bucketings ~n ~buckets:b (Exact_sse.avg_histogram ctx) in
      Helpers.check_close ~tol:1e-6
        (Printf.sprintf "opt-a = exhaustive (n=%d b=%d)" n b)
        best sse
    done
  done

let test_dp_sse_is_true_sse () =
  (* The DP objective equals the brute-force SSE of the histogram it
     returns. *)
  let rng = Rng.create 101 in
  for _ = 1 to 8 do
    let n = 3 + Rng.int rng 12 in
    let data = Helpers.random_int_data rng ~n ~hi:15 in
    let p = Helpers.prefix_of data in
    let { Opt_a.histogram; sse; _ } = Opt_a.build_exact p ~buckets:3 in
    Helpers.check_close ~tol:1e-6 "dp sse = brute sse"
      (Helpers.hist_sse p histogram)
      sse
  done

let test_opt_a_beats_other_boundaries () =
  (* No other bucketing with B buckets (filled with true averages) does
     better. *)
  let rng = Rng.create 102 in
  for _ = 1 to 6 do
    let n = 5 + Rng.int rng 6 in
    let data = Helpers.random_int_data rng ~n ~hi:10 in
    let p = Helpers.prefix_of data in
    let ctx = Cost.make p in
    let { Opt_a.sse; _ } = Opt_a.build_exact p ~buckets:3 in
    List.iter
      (fun bk ->
        Alcotest.(check bool) "opt-a is minimal" true
          (sse <= Exact_sse.avg_histogram ctx bk +. 1e-6))
      (Bucket.enumerate ~n ~buckets:3)
  done

let test_requires_integral_data () =
  let p = Helpers.prefix_of [| 1.5; 2. |] in
  try
    ignore (Opt_a.build p ~buckets:2);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_singletons_zero () =
  let p = Helpers.prefix_of [| 3.; 9.; 4. |] in
  let { Opt_a.sse; _ } = Opt_a.build_exact p ~buckets:3 in
  Helpers.check_close "zero" 0. sse

let test_one_bucket_matches_naive () =
  let data = [| 2.; 8.; 5.; 5. |] in
  let p = Helpers.prefix_of data in
  let { Opt_a.histogram; sse; _ } = Opt_a.build_exact p ~buckets:1 in
  Alcotest.(check int) "one bucket" 1 (H.Histogram.buckets histogram);
  Helpers.check_close "matches naive sse"
    (Helpers.hist_sse p (H.Baselines.naive p))
    sse

let test_sap1_no_worse_than_opt_a_same_buckets () =
  (* Theorem-level claim (Section 2.2.2): SAP1 with the same number of
     buckets is never worse than OPT-A. *)
  let rng = Rng.create 103 in
  for _ = 1 to 8 do
    let n = 4 + Rng.int rng 10 in
    let data = Helpers.random_int_data rng ~n ~hi:12 in
    let p = Helpers.prefix_of data in
    for b = 1 to 4 do
      let { Opt_a.sse = opt_a; _ } = Opt_a.build_exact p ~buckets:b in
      let _, sap1 = H.Sap1.build_with_cost p ~buckets:b in
      Alcotest.(check bool)
        (Printf.sprintf "sap1 <= opt-a (n=%d b=%d)" n b)
        true (sap1 <= opt_a +. 1e-6)
    done
  done

let test_opt_a_no_worse_than_a0_and_baselines () =
  let rng = Rng.create 104 in
  for _ = 1 to 6 do
    let n = 5 + Rng.int rng 10 in
    let data = Helpers.random_int_data rng ~n ~hi:15 in
    let p = Helpers.prefix_of data in
    let b = 3 in
    let { Opt_a.sse = opt; _ } = Opt_a.build_exact p ~buckets:b in
    List.iter
      (fun h ->
        Alcotest.(check bool)
          ("opt-a <= " ^ H.Histogram.name h)
          true
          (opt <= Helpers.hist_sse p h +. 1e-6))
      [
        H.A0.build p ~buckets:b;
        (* weighted POINT-OPT stores weighted means, which fall outside
           the class OPT-A is optimal over — use the unweighted variant *)
        H.Vopt.build ~weighted:false p ~buckets:b;
        H.Baselines.equi_width p ~buckets:b;
        H.Baselines.equi_depth p ~buckets:b;
        H.Baselines.max_diff p ~buckets:b;
      ]
  done

let test_rounded_x1_matches_exact () =
  (* x = 1 only rounds to integers, which the data already is. *)
  let rng = Rng.create 105 in
  for _ = 1 to 5 do
    let n = 4 + Rng.int rng 8 in
    let data = Helpers.random_int_data rng ~n ~hi:12 in
    let p = Helpers.prefix_of data in
    let exact = Opt_a.build_exact p ~buckets:3 in
    let rounded = Opt_a.build_rounded p ~buckets:3 ~x:1 in
    Helpers.check_close ~tol:1e-6 "same sse" exact.Opt_a.sse rounded.Opt_a.sse
  done

let test_rounded_quality_degrades_gracefully () =
  let rng = Rng.create 106 in
  let n = 16 in
  let data = Helpers.random_int_data rng ~n ~hi:100 in
  let p = Helpers.prefix_of data in
  let exact = Opt_a.build_exact p ~buckets:4 in
  List.iter
    (fun x ->
      let r = Opt_a.build_rounded p ~buckets:4 ~x in
      (* Never better than the optimum, and the SSE it reports is the
         true SSE of its histogram. *)
      Alcotest.(check bool) "not better than optimal" true
        (r.Opt_a.sse >= exact.Opt_a.sse -. 1e-6);
      Helpers.check_close ~tol:1e-6 "reported sse is true"
        (Helpers.hist_sse p r.Opt_a.histogram)
        r.Opt_a.sse)
    [ 2; 5; 10; 50 ]

let test_x_of_eps () =
  let p = Helpers.prefix_of (Array.make 100 10.) in
  Alcotest.(check int) "eps=0.1" (max 1 (int_of_float (ceil (0.1 *. 1000. /. 100.))))
    (Opt_a.x_of_eps p ~eps:0.1);
  Alcotest.(check int) "tiny eps floors at 1" 1 (Opt_a.x_of_eps p ~eps:1e-9)

let test_beam_is_sound () =
  (* A beam returns a valid histogram whose reported SSE is its true
     SSE and is no better than the optimum. *)
  let rng = Rng.create 107 in
  let n = 14 in
  let data = Helpers.random_int_data rng ~n ~hi:40 in
  let p = Helpers.prefix_of data in
  let exact = Opt_a.build_exact p ~buckets:4 in
  let beamed = Opt_a.build_exact ~beam:3 p ~buckets:4 in
  Alcotest.(check bool) "beam >= exact" true
    (beamed.Opt_a.sse >= exact.Opt_a.sse -. 1e-6);
  Helpers.check_close ~tol:1e-6 "beam sse true"
    (Helpers.hist_sse p beamed.Opt_a.histogram)
    beamed.Opt_a.sse

let test_max_states_guard () =
  let rng = Rng.create 108 in
  let n = 24 in
  let data = Helpers.random_int_data rng ~n ~hi:200 in
  let p = Helpers.prefix_of data in
  try
    ignore (Opt_a.build_exact ~max_states:50 p ~buckets:6);
    Alcotest.fail "expected Too_many_states"
  with Opt_a.Too_many_states { states; limit } ->
    Alcotest.(check bool) "reported" true (states > limit - 10)

let prop_opt_a_optimal_small =
  Helpers.qtest ~count:40 "opt-a optimal on random small data"
    Helpers.small_data_arb (fun data ->
      let n = Array.length data in
      if n < 2 then true
      else begin
        let p = Helpers.prefix_of data in
        let ctx = Cost.make p in
        let b = min 3 n in
        let { Opt_a.sse; _ } = Opt_a.build_exact p ~buckets:b in
        let best = min_over_bucketings ~n ~buckets:b (Exact_sse.avg_histogram ctx) in
        Helpers.close ~tol:1e-6 sse best
      end)

(* The Section-2.1.1 warm-up DP (two-parameter state) must agree with
   the improved Section-2.1.2 algorithm on the optimum. *)
let test_warmup_matches_improved () =
  let rng = Rng.create 110 in
  for _ = 1 to 10 do
    let n = 3 + Rng.int rng 8 in
    let data = Helpers.random_int_data rng ~n ~hi:10 in
    let p = Helpers.prefix_of data in
    for b = 1 to min 3 n do
      let improved = Opt_a.build_exact p ~buckets:b in
      let warmup = H.Opt_a_warmup.build_exact p ~buckets:b in
      Helpers.check_close ~tol:1e-6
        (Printf.sprintf "warmup = improved (n=%d b=%d)" n b)
        improved.Opt_a.sse warmup.H.Opt_a_warmup.sse
    done
  done

let test_warmup_state_guard () =
  let rng = Rng.create 111 in
  let data = Helpers.random_int_data rng ~n:20 ~hi:300 in
  let p = Helpers.prefix_of data in
  try
    ignore (H.Opt_a_warmup.build_exact ~max_states:30 p ~buckets:5);
    Alcotest.fail "expected Too_many_states"
  with Opt_a.Too_many_states _ -> ()

let test_warmup_uses_more_states () =
  (* The whole point of Section 2.1.2: dropping Λ₂ shrinks the state
     space.  Check the warm-up is never smaller on non-trivial inputs. *)
  let rng = Rng.create 112 in
  let data = Helpers.random_int_data rng ~n:12 ~hi:15 in
  let p = Helpers.prefix_of data in
  let improved = Opt_a.build_exact p ~buckets:3 in
  let warmup = H.Opt_a_warmup.build_exact p ~buckets:3 in
  Alcotest.(check bool) "warmup >= improved states" true
    (warmup.H.Opt_a_warmup.states >= improved.Opt_a.states)

(* --- Fast vs Reference transition kernels ---

   The fused unboxed kernel (Ktbl.relax over a sealed level) is
   contractually bit-identical to the iter+update_min reference: same
   SSE bits, same bucketing, same state counts, same Too_many_states
   payload, and byte-identical snapshots — so an interrupted run under
   one kernel resumes under the other. *)

let check_kernels_equal label (a : Opt_a.result) (b : Opt_a.result) =
  if not (Float.equal a.Opt_a.sse b.Opt_a.sse) then
    Alcotest.failf "%s: sse %.17g <> %.17g" label a.Opt_a.sse b.Opt_a.sse;
  Alcotest.(check (array int))
    (label ^ ": rights")
    (Bucket.rights (H.Histogram.bucketing a.Opt_a.histogram))
    (Bucket.rights (H.Histogram.bucketing b.Opt_a.histogram));
  Alcotest.(check int) (label ^ ": states") a.Opt_a.states b.Opt_a.states

let test_kernel_twins_random () =
  let rng = Rng.create 0xF457 in
  for trial = 1 to 15 do
    let n = 4 + Rng.int rng 14 in
    let data = Helpers.random_int_data rng ~n ~hi:30 in
    let p = Helpers.prefix_of data in
    let buckets = 1 + Rng.int rng 4 in
    check_kernels_equal
      (Printf.sprintf "trial %d" trial)
      (Opt_a.build_exact ~kernel:Opt_a.Fast p ~buckets)
      (Opt_a.build_exact ~kernel:Opt_a.Reference p ~buckets)
  done

let test_kernel_twins_beam () =
  let data = [| 9.; 1.; 4.; 4.; 7.; 2.; 8.; 3.; 6.; 5.; 2.; 7. |] in
  let p = Prefix.create data in
  List.iter
    (fun beam ->
      check_kernels_equal
        (Printf.sprintf "beam %d" beam)
        (Opt_a.build_exact ~kernel:Opt_a.Fast ~beam p ~buckets:4)
        (Opt_a.build_exact ~kernel:Opt_a.Reference ~beam p ~buckets:4))
    [ 1; 3; 17 ]

let test_kernel_twins_too_many_states () =
  let data = Array.init 14 (fun i -> float_of_int ((i * 5 mod 11) + 1)) in
  let p = Prefix.create data in
  let payload kernel =
    match Opt_a.build_exact ~kernel ~max_states:40 p ~buckets:4 with
    | _ -> Alcotest.failf "%s: 40 states must not suffice" (Opt_a.kernel_name kernel)
    | exception Opt_a.Too_many_states { states; limit } -> (states, limit)
  in
  Alcotest.(check (pair int int))
    "identical Too_many_states payload" (payload Opt_a.Fast)
    (payload Opt_a.Reference)

let test_kernel_twins_snapshots_interchange () =
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let with_tmp f =
    let path = Filename.temp_file "rs_opta_k" ".ckpt" in
    Sys.remove path;
    Fun.protect
      ~finally:(fun () ->
        if Sys.file_exists path then Sys.remove path;
        let tmp = path ^ ".tmp" in
        if Sys.file_exists tmp then Sys.remove tmp)
      (fun () -> f path)
  in
  let data = [| 1.; 3.; 5.; 11.; 12.; 13.; 2.; 8.; 4.; 6. |] in
  let p = Prefix.create data in
  let buckets = 4 in
  (* pin key_cap so the governed UB-seeding pass is skipped and every
     poll lands in the exact DP, where snapshots exist *)
  let key_cap = 100_000 in
  let base = Opt_a.build_exact ~key_cap p ~buckets in
  let module Governor = Rs_util.Governor in
  let compared = ref 0 in
  for budget = 1 to 40 do
    (* interrupt under [kernel], resume under the other one (while the
       checkpoint file still exists), and hand back the snapshot bytes *)
    let snap kernel ~resume_kernel =
      with_tmp (fun path ->
          let governor =
            Governor.create ~deadline_mode:Governor.Snapshot ~poll_budget:budget
              ()
          in
          match
            Opt_a.build_exact ~kernel ~key_cap ~governor ~checkpoint_path:path
              p ~buckets
          with
          | _ -> None
          | exception Governor.Interrupted { checkpoint; _ } ->
              let bytes = read_file path in
              check_kernels_equal
                (Printf.sprintf "budget %d %s->%s resume" budget
                   (Opt_a.kernel_name kernel)
                   (Opt_a.kernel_name resume_kernel))
                base
                (Opt_a.build_exact ~kernel:resume_kernel ~key_cap
                   ~resume_from:checkpoint p ~buckets);
              Some bytes)
    in
    match
      ( snap Opt_a.Fast ~resume_kernel:Opt_a.Reference,
        snap Opt_a.Reference ~resume_kernel:Opt_a.Fast )
    with
    | None, None -> ()
    | Some _, None | None, Some _ ->
        Alcotest.failf "budget %d: kernels disagree on interruption" budget
    | Some fast_bytes, Some ref_bytes ->
        incr compared;
        if fast_bytes <> ref_bytes then
          Alcotest.failf "budget %d: snapshot bytes differ across kernels"
            budget
  done;
  Alcotest.(check bool) "at least one interruption" true (!compared > 0)

let () =
  Alcotest.run "opt_a"
    [
      ( "optimality",
        [
          Alcotest.test_case "exact vs exhaustive" `Quick test_exact_vs_exhaustive;
          Alcotest.test_case "dp sse is true sse" `Quick test_dp_sse_is_true_sse;
          Alcotest.test_case "beats all boundaries" `Quick test_opt_a_beats_other_boundaries;
          Alcotest.test_case "sap1 <= opt-a" `Quick test_sap1_no_worse_than_opt_a_same_buckets;
          Alcotest.test_case "opt-a <= heuristics" `Quick test_opt_a_no_worse_than_a0_and_baselines;
          prop_opt_a_optimal_small;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "requires ints" `Quick test_requires_integral_data;
          Alcotest.test_case "singletons zero" `Quick test_singletons_zero;
          Alcotest.test_case "one bucket" `Quick test_one_bucket_matches_naive;
        ] );
      ( "rounded",
        [
          Alcotest.test_case "x=1 exact" `Quick test_rounded_x1_matches_exact;
          Alcotest.test_case "graceful degradation" `Quick test_rounded_quality_degrades_gracefully;
          Alcotest.test_case "x_of_eps" `Quick test_x_of_eps;
        ] );
      ( "engineering",
        [
          Alcotest.test_case "beam sound" `Quick test_beam_is_sound;
          Alcotest.test_case "state guard" `Quick test_max_states_guard;
        ] );
      ( "kernel-twins",
        [
          Alcotest.test_case "random sweeps" `Quick test_kernel_twins_random;
          Alcotest.test_case "beam truncation" `Quick test_kernel_twins_beam;
          Alcotest.test_case "state-budget payload" `Quick
            test_kernel_twins_too_many_states;
          Alcotest.test_case "snapshot interchange" `Quick
            test_kernel_twins_snapshots_interchange;
        ] );
      ( "warmup",
        [
          Alcotest.test_case "matches improved" `Quick test_warmup_matches_improved;
          Alcotest.test_case "state guard" `Quick test_warmup_state_guard;
          Alcotest.test_case "more states" `Quick test_warmup_uses_more_states;
        ] );
    ]
