(* Streaming ingestion: incremental prefix-moment twins (bit-exact
   freeze-vs-rebuild over random delta sequences), the mergeable
   synopsis operators (wavelet and histogram), the Stream module's
   ingest/staleness/refresh lifecycle with its WAL durability contract
   (torn tails, double delivery, kill -9 mid-ingest), rolling windows,
   and the serving integration (ingest op, stale demotion, RMSE-bound
   suppression, restart durability). *)

module Error = Rs_util.Error
module Faults = Rs_util.Faults
module Governor = Rs_util.Governor
module Prefix = Rs_util.Prefix
module Rng = Rs_dist.Rng
module W = Rs_wavelet.Synopsis
module H = Rs_histogram.Histogram
module Bucket = Rs_histogram.Bucket
module Dataset = Rs_core.Dataset
module Builder = Rs_core.Builder
module CS = Rs_core.Synopsis
module Store = Rs_core.Store
module Seg = Rs_core.Segmented
module Stream = Rs_core.Stream
module Server = Rs_serve.Server
module P = Rs_serve.Protocol

let bits = Int64.bits_of_float

let check_bits name a b =
  if bits a <> bits b then Alcotest.failf "%s: %h vs %h" name a b

let close ?(tol = 1e-9) a b =
  abs_float (a -. b) <= tol *. Float.max 1. (abs_float a +. abs_float b)

let check_close ?tol name a b =
  if not (close ?tol a b) then Alcotest.failf "%s: %.17g vs %.17g" name a b

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e)

let tmp_path suffix =
  let path = Filename.temp_file "rs_stream" suffix in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tmp_dir f =
  let dir = tmp_path ".streamstore" in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

(* --- Prefix.Inc: bit-exact incremental maintenance -------------------- *)

(* The streaming contract in one check: an incrementally-maintained
   table, frozen, must be bit-identical to Prefix.create over the same
   data — prefix cells, all four moment tables (read through the public
   sums, which expose every cumulative cell), and the data itself. *)
let check_inc_twin name inc =
  let data = Prefix.Inc.data inc in
  let frozen = Prefix.Inc.freeze inc in
  let reference = Prefix.create data in
  let n = Prefix.n reference in
  Alcotest.(check int) (name ^ ": n") n (Prefix.n frozen);
  for k = 0 to n do
    check_bits
      (Printf.sprintf "%s: P[%d]" name k)
      (Prefix.prefix reference k) (Prefix.prefix frozen k);
    check_bits
      (Printf.sprintf "%s: live P[%d]" name k)
      (Prefix.prefix reference k)
      (Prefix.Inc.prefix inc k)
  done;
  for v = 0 to n do
    check_bits
      (Printf.sprintf "%s: sum_p[0..%d]" name v)
      (Prefix.sum_p reference ~u:0 ~v)
      (Prefix.sum_p frozen ~u:0 ~v);
    check_bits
      (Printf.sprintf "%s: sum_p2[0..%d]" name v)
      (Prefix.sum_p2 reference ~u:0 ~v)
      (Prefix.sum_p2 frozen ~u:0 ~v);
    check_bits
      (Printf.sprintf "%s: sum_tp[0..%d]" name v)
      (Prefix.sum_tp reference ~u:0 ~v)
      (Prefix.sum_tp frozen ~u:0 ~v)
  done;
  for b = 1 to n do
    check_bits
      (Printf.sprintf "%s: sum_a2[1..%d]" name b)
      (Prefix.sum_a2 reference ~a:1 ~b)
      (Prefix.sum_a2 frozen ~a:1 ~b)
  done

let rand_value rng = Rng.float rng *. 100.
let rand_delta rng = (Rng.float rng -. 0.3) *. 10.

(* >= 500 random sequences across the three shapes (append-only,
   delta-only, mixed), every one checked bit-exact. *)
let test_inc_append_twin () =
  let rng = Rng.create 0xC0FFEE in
  for case = 1 to 180 do
    let n = 1 + Rng.int rng 60 in
    let inc = Prefix.Inc.create () in
    for _ = 1 to n do
      Prefix.Inc.append inc (rand_value rng)
    done;
    Alcotest.(check int) "length" n (Prefix.Inc.n inc);
    check_inc_twin (Printf.sprintf "append case %d" case) inc
  done

let test_inc_delta_twin () =
  let rng = Rng.create 0xBEEF in
  for case = 1 to 180 do
    let n = 1 + Rng.int rng 50 in
    let base = Array.init n (fun _ -> rand_value rng) in
    let inc = Prefix.Inc.of_array base in
    let shadow = Array.copy base in
    for _ = 1 to 1 + Rng.int rng 30 do
      let i = 1 + Rng.int rng n in
      let d = rand_delta rng in
      Prefix.Inc.add inc ~i ~delta:d;
      shadow.(i - 1) <- shadow.(i - 1) +. d
    done;
    Array.iteri
      (fun j v ->
        check_bits
          (Printf.sprintf "delta case %d: A[%d]" case (j + 1))
          v
          (Prefix.Inc.value inc (j + 1)))
      shadow;
    check_inc_twin (Printf.sprintf "delta case %d" case) inc
  done

let test_inc_mixed_twin () =
  let rng = Rng.create 0xFEED in
  for case = 1 to 160 do
    let inc = Prefix.Inc.create () in
    Prefix.Inc.append inc (rand_value rng);
    for _ = 1 to 40 do
      if Rng.bool rng then Prefix.Inc.append inc (rand_value rng)
      else
        let i = 1 + Rng.int rng (Prefix.Inc.n inc) in
        Prefix.Inc.add inc ~i ~delta:(rand_delta rng)
    done;
    check_inc_twin (Printf.sprintf "mixed case %d" case) inc;
    (* range sums read off the live tables match the frozen twin *)
    let frozen = Prefix.Inc.freeze inc in
    let n = Prefix.Inc.n inc in
    for _ = 1 to 20 do
      let a = 1 + Rng.int rng n in
      let b = a + Rng.int rng (n - a + 1) in
      check_bits
        (Printf.sprintf "mixed case %d: s[%d,%d]" case a b)
        (Prefix.range_sum frozen ~a ~b)
        (Prefix.Inc.range_sum inc ~a ~b)
    done
  done

let test_inc_validation () =
  let inc = Prefix.Inc.of_array [| 1.; 2.; 3. |] in
  let rejects f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  rejects (fun () -> Prefix.Inc.append inc Float.nan);
  rejects (fun () -> Prefix.Inc.add inc ~i:0 ~delta:1.);
  rejects (fun () -> Prefix.Inc.add inc ~i:4 ~delta:1.);
  rejects (fun () -> Prefix.Inc.add inc ~i:1 ~delta:Float.infinity);
  rejects (fun () -> Prefix.Inc.freeze (Prefix.Inc.create ()));
  (* the rejected operations left the table untouched *)
  check_inc_twin "after rejects" inc

(* --- wavelet merge: bounded names, deterministic truncation ------------ *)

let test_merge_chain_name_bounded () =
  let data = Array.init 31 (fun i -> float_of_int ((i * 7 mod 13) + 1)) in
  let s0 = W.range_optimal data ~b:8 in
  let acc = ref s0 in
  for _ = 1 to 1000 do
    acc := W.merge !acc s0
  done;
  (* one "+merged" suffix, never a 1000-deep chain of them *)
  Alcotest.(check string) "bounded name" (W.name s0 ^ "+merged") (W.name !acc);
  Alcotest.(check int) "domain preserved" 31 (W.n !acc);
  Alcotest.(check bool)
    "budget bounded" true
    (W.storage_words !acc <= W.storage_words s0)

let test_merge_tiebreak_fixture () =
  (* Four coefficients of equal magnitude across the two inputs; budget
     keeps two.  Lowest index wins — pinned as exact output bytes. *)
  let s1 = W.of_coefficients ~name:"w1" ~n:7 W.Prefix_sums [| (1, 2.); (3, -2.) |] in
  let s2 = W.of_coefficients ~name:"w2" ~n:7 W.Prefix_sums [| (2, 2.); (5, -2.) |] in
  let check_kept name merged expected =
    let got = W.coefficients merged in
    if Array.length got <> Array.length expected then
      Alcotest.failf "%s: kept %d coefficients, expected %d" name
        (Array.length got) (Array.length expected);
    Array.iteri
      (fun k (i, c) ->
        let gi, gc = got.(k) in
        if gi <> i || bits gc <> bits c then
          Alcotest.failf "%s: slot %d is (%d, %h), expected (%d, %h)" name k gi
            gc i c)
      expected
  in
  check_kept "merge s1 s2" (W.merge s1 s2) [| (1, 2.); (2, 2.) |];
  (* accumulation order must not change the kept set *)
  check_kept "merge s2 s1" (W.merge s2 s1) [| (1, 2.); (2, 2.) |];
  (* exactly-cancelled coefficients are dropped before truncation *)
  let s3 = W.of_coefficients ~name:"w3" ~n:7 W.Prefix_sums [| (1, -2.); (6, 1.) |] in
  check_kept "cancellation" (W.merge s1 s3) [| (3, -2.); (6, 1.) |]

let test_merge_agrees_with_batch () =
  (* With budget >= the number of nonzero coefficients, merge loses
     nothing: it answers like a from-scratch build of the summed data
     (and both are near-exact).  Property-tested over random pairs. *)
  let rng = Rng.create 0xAB1E in
  for case = 1 to 40 do
    let n = if Rng.bool rng then 15 else 31 in
    let a1 = Array.init n (fun _ -> float_of_int (Rng.int rng 10)) in
    let a2 = Array.init n (fun _ -> float_of_int (Rng.int rng 10)) in
    let b = n + 1 in
    let merged = W.merge (W.range_optimal a1 ~b) (W.range_optimal a2 ~b) in
    let batch = W.range_optimal (Array.map2 ( +. ) a1 a2) ~b in
    for a = 1 to n do
      for bb = a to n do
        let label = Printf.sprintf "case %d: [%d,%d]" case a bb in
        check_close ~tol:1e-9 label
          (W.estimate batch ~a ~b:bb)
          (W.estimate merged ~a ~b:bb)
      done
    done
  done

let test_merge_associative_up_to_truncation () =
  (* Full budget: association order changes nothing but float rounding.
     The kept index sets must agree exactly; values to 1e-9. *)
  let rng = Rng.create 0x50DA in
  for case = 1 to 25 do
    let n = 15 in
    let arr () = Array.init n (fun _ -> 1. +. float_of_int (Rng.int rng 8)) in
    let b = n + 1 in
    let s1 = W.range_optimal (arr ()) ~b
    and s2 = W.range_optimal (arr ()) ~b
    and s3 = W.range_optimal (arr ()) ~b in
    let l = W.merge (W.merge s1 s2) s3 in
    let r = W.merge s1 (W.merge s2 s3) in
    let li = Array.map fst (W.coefficients l)
    and ri = Array.map fst (W.coefficients r) in
    if li <> ri then Alcotest.failf "case %d: kept index sets differ" case;
    Array.iteri
      (fun k (_, cl) ->
        let _, cr = (W.coefficients r).(k) in
        check_close ~tol:1e-9 (Printf.sprintf "case %d: coeff %d" case k) cl cr)
      (W.coefficients l);
    for a = 1 to n do
      check_close ~tol:1e-9
        (Printf.sprintf "case %d: est [%d,%d]" case a n)
        (W.estimate l ~a ~b:n) (W.estimate r ~a ~b:n)
    done
  done

(* --- histogram merge / refresh ----------------------------------------- *)

let avg_histogram ~name ~buckets data =
  let n = Array.length data in
  let bk = Bucket.equi_width ~n ~buckets in
  let p = Prefix.create data in
  let values =
    Array.init (Bucket.count bk) (fun k ->
        let l, r = Bucket.bounds bk k in
        Prefix.mean p ~a:l ~b:r)
  in
  H.make ~name bk (H.Avg values)

let test_histogram_merge_additive () =
  let rng = Rng.create 0x4157 in
  let n = 64 in
  let d1 = Array.init n (fun _ -> Rng.float rng *. 20.) in
  let d2 = Array.init n (fun _ -> Rng.float rng *. 20.) in
  let h1 = avg_histogram ~name:"h1" ~buckets:5 d1 in
  let h2 = avg_histogram ~name:"h2" ~buckets:7 d2 in
  let m = H.merge h1 h2 in
  (* the common refinement answers exactly like the sum of the inputs *)
  for a = 1 to n do
    for b = a to n do
      check_close ~tol:1e-9
        (Printf.sprintf "merged est [%d,%d]" a b)
        (H.estimate h1 ~a ~b +. H.estimate h2 ~a ~b)
        (H.estimate m ~a ~b)
    done
  done;
  Alcotest.(check string) "bounded name" "h1+merged" (H.name m);
  (* chains keep the name bounded too *)
  let acc = ref m in
  for _ = 1 to 100 do
    acc := H.merge !acc h2
  done;
  Alcotest.(check string) "chained name" "h1+merged" (H.name !acc)

let test_histogram_refresh () =
  let rng = Rng.create 0x5EED in
  let n = 48 in
  let d1 = Array.init n (fun _ -> Rng.float rng *. 10.) in
  let d2 = Array.init n (fun _ -> Rng.float rng *. 10.) in
  let h = avg_histogram ~name:"h" ~buckets:6 d1 in
  let r = H.refresh h (Prefix.create d2) in
  Alcotest.(check string) "refresh keeps the name" (H.name h) (H.name r);
  Alcotest.(check int) "refresh keeps the buckets" (H.buckets h) (H.buckets r);
  let p2 = Prefix.create d2 in
  for k = 0 to H.buckets r - 1 do
    let l, rr = Bucket.bounds (H.bucketing r) k in
    (* over a whole bucket the Avg estimator is exact for the bucket
       mean: a refreshed histogram answers from the new data *)
    check_close ~tol:1e-9
      (Printf.sprintf "bucket %d" k)
      (Prefix.range_sum p2 ~a:l ~b:rr)
      (H.estimate r ~a:l ~b:rr)
  done

let test_core_merge_dispatch () =
  let d1 = Array.init 32 (fun i -> float_of_int (i mod 5)) in
  let d2 = Array.init 32 (fun i -> float_of_int (i mod 3)) in
  let wave d = CS.Wavelet (W.range_optimal d ~b:8) in
  let hist d = CS.Histogram (avg_histogram ~name:"h" ~buckets:4 d) in
  (match CS.merge (wave d1) (wave d2) with
  | CS.Wavelet _ -> ()
  | _ -> Alcotest.fail "wavelet merge changed representation");
  (match CS.merge (hist d1) (hist d2) with
  | CS.Histogram _ -> ()
  | _ -> Alcotest.fail "histogram merge changed representation");
  match CS.merge_result (hist d1) (wave d2) with
  | Error (Error.Invalid_input _) -> ()
  | Ok _ -> Alcotest.fail "cross-representation merge must be refused"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)

(* --- the stream: ingest, staleness, refresh ---------------------------- *)

let stream_config =
  {
    Stream.default_config with
    Stream.method_name = "a0";
    budget_words = 64;
    segments = 4;
    stale_threshold = 0.;
  }

(* A from-scratch batch build of the stream's current data under the
   same plan, grants and names — the determinism oracle. *)
let batch_twin t =
  let cfg = Stream.config t in
  let plan = Stream.plan t in
  let grants =
    Seg.uniform_split plan ~method_name:cfg.Stream.method_name
      ~budget_words:cfg.Stream.budget_words
  in
  let data = Stream.data t in
  let syns =
    Array.mapi
      (fun i (lo, hi) ->
        let slice = Array.sub data (lo - 1) (hi - lo + 1) in
        let ds =
          Dataset.of_floats
            ~name:(Printf.sprintf "%s.seg%d" cfg.Stream.entry_prefix i)
            slice
        in
        Builder.build ds ~method_name:cfg.Stream.method_name
          ~budget_words:grants.(i))
      plan.Seg.bounds
  in
  Seg.make (Stream.dataset t) plan syns

let deltas_a = [| (2, 1.5); (3, 0.25); (20, 2.) |]
let deltas_b = [| (40, 0.75); (64, 3.) |]

let test_stream_lifecycle () =
  let ds = Dataset.generate "zipf-64" in
  let t = Stream.create ~config:stream_config ds in
  Alcotest.(check int) "n" 64 (Stream.n t);
  Alcotest.(check int) "segments" 4 (Stream.segments t);
  Array.iteri
    (fun i v -> check_bits (Printf.sprintf "A[%d]" (i + 1)) v (Stream.value t (i + 1)))
    (Dataset.values ds);
  (* exact range sums straight off the incremental moments *)
  let p = Dataset.prefix ds in
  for a = 1 to 64 do
    check_close ~tol:1e-12
      (Printf.sprintf "s[%d,64]" a)
      (Prefix.range_sum p ~a ~b:64)
      (Stream.range_sum t ~a ~b:64)
  done;
  (* a fresh stream answers exactly like the batch build it came from *)
  Alcotest.(check string)
    "fresh stream = batch bytes"
    (Seg.to_string (batch_twin t))
    (Seg.to_string (Stream.synopsis t));
  (* ingest dirties exactly the touched segments *)
  let report = Stream.ingest t deltas_a in
  Alcotest.(check int) "applied" 3 report.Stream.applied;
  Alcotest.(check (list int)) "stale segments" [ 0; 1 ] report.Stream.stale;
  check_bits "dirty mass seg0" 1.75 (Stream.staleness t).(0);
  check_bits "dirty mass seg1" 2. (Stream.staleness t).(1);
  check_bits "updated value" (Dataset.values ds).(1) (Stream.value t 2 -. 1.5);
  (* refresh rebuilds only the dirty segments... *)
  let r = Stream.refresh t in
  Alcotest.(check (list int)) "rebuilt" [ 0; 1 ] r.Stream.rebuilt;
  Alcotest.(check int) "skipped" 2 r.Stream.skipped_clean;
  Alcotest.(check bool) "not expired" false r.Stream.expired;
  Alcotest.(check (list int)) "clean after refresh" [] (Stream.stale_segments t);
  (* ...and the result is bit-identical to the from-scratch batch build *)
  Alcotest.(check string)
    "refreshed stream = batch bytes"
    (Seg.to_string (batch_twin t))
    (Seg.to_string (Stream.synopsis t));
  (* below-threshold deltas stay clean and untouched *)
  let lazy_t =
    Stream.create
      ~config:{ stream_config with Stream.stale_threshold = 10. }
      ds
  in
  ignore (Stream.ingest lazy_t deltas_a);
  Alcotest.(check (list int)) "under threshold" [] (Stream.stale_segments lazy_t);
  (* the per-segment exact totals track the data, but a refresh with
     nothing over threshold must leave every synopsis untouched *)
  let before = Seg.to_string (Stream.synopsis lazy_t) in
  let r = Stream.refresh lazy_t in
  Alcotest.(check (list int)) "nothing rebuilt" [] r.Stream.rebuilt;
  Alcotest.(check int) "all skipped" 4 r.Stream.skipped_clean;
  Alcotest.(check string)
    "synopses untouched" before
    (Seg.to_string (Stream.synopsis lazy_t));
  (* force rebuilds everything, and lands on the batch bytes again *)
  let r = Stream.refresh ~force:true lazy_t in
  Alcotest.(check (list int)) "force rebuilds all" [ 0; 1; 2; 3 ] r.Stream.rebuilt;
  Alcotest.(check string)
    "forced refresh = batch bytes"
    (Seg.to_string (batch_twin lazy_t))
    (Seg.to_string (Stream.synopsis lazy_t))

let test_stream_refresh_governor () =
  let ds = Dataset.generate "zipf-64" in
  let t = Stream.create ~config:stream_config ds in
  ignore (Stream.ingest t [| (1, 1.); (17, 1.); (33, 1.); (49, 1.) |]);
  Alcotest.(check (list int)) "all stale" [ 0; 1; 2; 3 ] (Stream.stale_segments t);
  (* a 2-poll budget admits exactly one segment boundary *)
  let r = Stream.refresh ~governor:(Governor.create ~poll_budget:2 ()) t in
  Alcotest.(check bool) "expired" true r.Stream.expired;
  Alcotest.(check (list int)) "one segment rebuilt" [ 0 ] r.Stream.rebuilt;
  Alcotest.(check (list int))
    "the rest keep their staleness" [ 1; 2; 3 ] (Stream.stale_segments t);
  (* the next refresh completes the job *)
  let r = Stream.refresh t in
  Alcotest.(check (list int)) "remaining rebuilt" [ 1; 2; 3 ] r.Stream.rebuilt;
  Alcotest.(check string)
    "converges to batch bytes"
    (Seg.to_string (batch_twin t))
    (Seg.to_string (Stream.synopsis t))

let test_stream_ingest_validation () =
  let ds = Dataset.generate "zipf-64" in
  let t = Stream.create ~config:stream_config ds in
  let before = Stream.data t in
  let rejected deltas =
    match Stream.ingest t deltas with
    | exception Error.Rs_error (Error.Invalid_input _) -> ()
    | _ -> Alcotest.fail "expected Invalid_input"
  in
  rejected [| (0, 1.) |];
  rejected [| (65, 1.) |];
  rejected [| (3, Float.nan) |];
  (* a delta that would drive a value negative is refused whole-batch *)
  rejected [| (5, 1.); (7, -1e9) |];
  (* all-or-nothing: nothing was applied, nothing went dirty *)
  Array.iteri
    (fun j v -> check_bits (Printf.sprintf "A[%d] untouched" (j + 1)) v
        (Stream.value t (j + 1)))
    before;
  Alcotest.(check (list int)) "still clean" [] (Stream.stale_segments t)

let test_stream_ingest_seam () =
  let ds = Dataset.generate "zipf-64" in
  let t = Stream.create ~config:stream_config ds in
  Faults.with_faults [ "stream.ingest" ] (fun () ->
      (match Stream.ingest t deltas_a with
      | exception Faults.Injected _ -> ()
      | _ -> Alcotest.fail "expected the injected fault");
      (* tripped before any work: nothing applied *)
      Alcotest.(check (list int)) "clean" [] (Stream.stale_segments t));
  ignore (Stream.ingest t deltas_a);
  Alcotest.(check (list int)) "disarmed ingest lands" [ 0; 1 ]
    (Stream.stale_segments t)

(* --- the stream under a store: WAL durability -------------------------- *)

let apply_expected base deltas =
  let out = Array.copy base in
  Array.iter (fun (i, d) -> out.(i - 1) <- out.(i - 1) +. d) deltas;
  out

let check_data name expected t =
  Array.iteri
    (fun j v ->
      check_bits (Printf.sprintf "%s: A[%d]" name (j + 1)) v
        (Stream.value t (j + 1)))
    expected

let test_stream_resume_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let ds = Dataset.generate "zipf-64" in
  let store = Store.open_dir dir in
  let t = Stream.create ~config:stream_config ~store ds in
  ignore (Stream.ingest t deltas_a);
  ignore (Stream.ingest t deltas_b);
  let expected = apply_expected (apply_expected (Dataset.values ds) deltas_a) deltas_b in
  let live_bytes = Seg.to_string (Stream.synopsis t) in
  (* abandon the in-memory stream: everything acked must survive *)
  let t' =
    match ok_or_fail (Stream.resume (Store.open_dir dir)) with
    | Some t' -> t'
    | None -> Alcotest.fail "no stream manifest after create"
  in
  check_data "resumed" expected t';
  Array.iteri
    (fun i d ->
      check_bits (Printf.sprintf "staleness seg%d" i) d (Stream.staleness t').(i))
    (Stream.staleness t);
  Alcotest.(check string) "synopses survive" live_bytes
    (Seg.to_string (Stream.synopsis t'));
  (* refresh on the resumed stream: manifest checkpointed, WAL drained *)
  ignore (Stream.refresh t');
  let records, dropped = ok_or_fail (Store.wal_load (Store.open_dir dir)) in
  Alcotest.(check int) "WAL compacted" 0 (List.length records);
  Alcotest.(check int) "no torn lines" 0 dropped;
  let t'' =
    match ok_or_fail (Stream.resume (Store.open_dir dir)) with
    | Some t'' -> t''
    | None -> Alcotest.fail "manifest lost by refresh"
  in
  check_data "resumed post-refresh" expected t'';
  Alcotest.(check (list int)) "clean post-refresh" [] (Stream.stale_segments t'');
  Alcotest.(check string)
    "post-refresh = batch bytes"
    (Seg.to_string (batch_twin t''))
    (Seg.to_string (Stream.synopsis t''))

let test_stream_double_delivery () =
  with_tmp_dir @@ fun dir ->
  let ds = Dataset.generate "zipf-64" in
  let store = Store.open_dir dir in
  let t = Stream.create ~config:stream_config ~store ds in
  ignore (Stream.ingest t deltas_a);
  let expected = apply_expected (Dataset.values ds) deltas_a in
  let wal_bytes = read_file (Store.wal_path store) in
  (* refresh checkpoints the manifest and compacts the WAL; a crash
     between the two re-delivers old records — simulate it by putting
     the compacted bytes back *)
  ignore (Stream.refresh t);
  let wal = Store.wal_path store in
  let existing = if Sys.file_exists wal then read_file wal else "" in
  write_file wal (existing ^ wal_bytes);
  let t' =
    match ok_or_fail (Stream.resume (Store.open_dir dir)) with
    | Some t' -> t'
    | None -> Alcotest.fail "manifest missing"
  in
  (* the replayed records are at or below each segment's applied seq:
     the sequence check drops them, so nothing is applied twice *)
  check_data "idempotent replay" expected t';
  Alcotest.(check (list int)) "still clean" [] (Stream.stale_segments t')

(* The compaction/restart seam: refresh compacts the WAL, so a fresh
   process's seq counter restarts from what the log still holds — it
   must be pinned above the manifest's applied seqs or the next acked
   batch replays as "already applied" and vanishes on resume. *)
let test_stream_ingest_after_compaction () =
  with_tmp_dir @@ fun dir ->
  let ds = Dataset.generate "zipf-64" in
  let store = Store.open_dir dir in
  let t = Stream.create ~config:stream_config ~store ds in
  ignore (Stream.ingest t deltas_a);
  ignore (Stream.refresh t);
  (* a brand-new handle on the compacted store, like a restart *)
  let t' =
    match ok_or_fail (Stream.resume (Store.open_dir dir)) with
    | Some t' -> t'
    | None -> Alcotest.fail "manifest missing"
  in
  (* hit the segments refresh just folded: their applied seqs are the
     pre-compaction high-water mark, above anything a naively restarted
     counter would assign *)
  let deltas_c = [| (5, 0.75); (30, 3.) |] in
  ignore (Stream.ingest t' deltas_c);
  let expected =
    apply_expected (apply_expected (Dataset.values ds) deltas_a) deltas_c
  in
  check_data "post-compaction ingest lands" expected t';
  (* and it survives yet another restart: the acked batch must not be
     dropped as already-applied during replay *)
  let t'' =
    match ok_or_fail (Stream.resume (Store.open_dir dir)) with
    | Some t'' -> t''
    | None -> Alcotest.fail "manifest missing after second resume"
  in
  check_data "post-compaction ingest survives restart" expected t'';
  check_bits "staleness survives restart" 0.75 (Stream.staleness t'').(0);
  check_bits "staleness survives restart seg1" 3. (Stream.staleness t'').(1)

let test_stream_torn_wal_tail () =
  with_tmp_dir @@ fun dir ->
  let ds = Dataset.generate "zipf-64" in
  let store = Store.open_dir dir in
  let t = Stream.create ~config:stream_config ~store ds in
  ignore (Stream.ingest t [| (2, 1.5) |]);
  ignore (Stream.ingest t [| (40, 2.25) |]);
  let wal = Store.wal_path store in
  let bytes = read_file wal in
  (* tear the tail mid-record: the torn line must be dropped, the
     intact prefix must replay *)
  write_file wal (String.sub bytes 0 (String.length bytes - 4));
  let records, dropped = ok_or_fail (Store.wal_load (Store.open_dir dir)) in
  Alcotest.(check int) "one torn line dropped" 1 dropped;
  Alcotest.(check int) "the intact record survives" 1 (List.length records);
  let t' =
    match ok_or_fail (Stream.resume (Store.open_dir dir)) with
    | Some t' -> t'
    | None -> Alcotest.fail "manifest missing"
  in
  check_data "prefix replayed"
    (apply_expected (Dataset.values ds) [| (2, 1.5) |])
    t'

let test_stream_manifest_fuzz () =
  with_tmp_dir @@ fun dir ->
  let ds = Dataset.generate "zipf-64" in
  let store = Store.open_dir dir in
  ignore (Stream.create ~config:stream_config ~store ds);
  let path = Store.stream_manifest_path store in
  let pristine = read_file path in
  (* flip one byte inside the framed body: the CRC must catch it *)
  let corrupt = Bytes.of_string pristine in
  let mid = String.length pristine / 2 in
  Bytes.set corrupt mid (if Bytes.get corrupt mid = 'x' then 'y' else 'x');
  write_file path (Bytes.to_string corrupt);
  (match Stream.resume (Store.open_dir dir) with
  | Error (Error.Corrupt_checkpoint _) -> ()
  | Ok _ -> Alcotest.fail "corrupt manifest accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e));
  (* a well-framed but semantically broken body is just as corrupt *)
  Store.save_stream_manifest store "stream nonsense\n";
  (match Stream.resume (Store.open_dir dir) with
  | Error (Error.Corrupt_checkpoint _) -> ()
  | Ok _ -> Alcotest.fail "garbage manifest accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e));
  (* quarantine degrades to "no stream", never bricks the store *)
  Store.quarantine_stream_manifest store;
  match ok_or_fail (Stream.resume (Store.open_dir dir)) with
  | None -> ()
  | Some _ -> Alcotest.fail "quarantined manifest still resumed"

(* The PR's acceptance criterion, literally: kill -9 after the ingest
   ack, restart, and every acknowledged delta is still there. *)
let test_stream_kill9_after_ack () =
  with_tmp_dir @@ fun dir ->
  let marker = Filename.concat dir "acked.marker" in
  let ds = Dataset.generate "zipf-64" in
  let store = Store.open_dir dir in
  ignore (Stream.create ~config:stream_config ~store ds);
  let expected = apply_expected (Dataset.values ds) deltas_a in
  (match Unix.fork () with
  | 0 ->
      (* the child is its own process: resume, ingest, mark the ack,
         then die without any cleanup at all *)
      (try
         match Stream.resume (Store.open_dir dir) with
         | Ok (Some t) ->
             ignore (Stream.ingest t deltas_a);
             write_file marker "acked";
             Unix.kill (Unix.getpid ()) Sys.sigkill
         | _ -> ()
       with _ -> ());
      Unix._exit 1
  | pid ->
      let _, status = Unix.waitpid [] pid in
      (match status with
      | Unix.WSIGNALED s when s = Sys.sigkill -> ()
      | _ -> Alcotest.fail "child did not die by SIGKILL after the ack"));
  Alcotest.(check bool) "the ingest was acked" true (Sys.file_exists marker);
  let t =
    match ok_or_fail (Stream.resume (Store.open_dir dir)) with
    | Some t -> t
    | None -> Alcotest.fail "manifest lost"
  in
  check_data "no acked delta lost" expected t;
  check_bits "staleness replayed" 1.75 (Stream.staleness t).(0);
  check_bits "staleness replayed seg1" 2. (Stream.staleness t).(1)

(* --- rolling windows --------------------------------------------------- *)

let test_rolling_window () =
  let n = 16 in
  let r = Stream.Rolling.create ~n ~sub_windows:3 ~b:n in
  let observe_batch weights =
    Array.iteri
      (fun i w -> if w > 0. then Stream.Rolling.observe r ~i:(i + 1) ~weight:w)
      weights
  in
  let slice k = Array.init n (fun i -> float_of_int (((i + k) mod 5) + 1)) in
  observe_batch (slice 0);
  Stream.Rolling.rotate r;
  observe_batch (slice 1);
  Stream.Rolling.rotate r;
  observe_batch (slice 2);
  Alcotest.(check int) "three live slices" 3 (Stream.Rolling.sub_windows r);
  (* window data is the pointwise slice sum *)
  let expected =
    Array.init n (fun i -> (slice 0).(i) +. (slice 1).(i) +. (slice 2).(i))
  in
  Array.iteri
    (fun i v -> check_bits (Printf.sprintf "window[%d]" i) v
        (Stream.Rolling.window_data r).(i))
    expected;
  (* full per-slice budget: the merged window synopsis is near-exact *)
  let syn = Stream.Rolling.synopsis r in
  let p = Prefix.create expected in
  for a = 1 to n do
    for b = a to n do
      check_close ~tol:1e-9
        (Printf.sprintf "window est [%d,%d]" a b)
        (Prefix.range_sum p ~a ~b)
        (W.estimate syn ~a ~b)
    done
  done;
  (* a fourth slice expires the oldest: the window slides *)
  Stream.Rolling.rotate r;
  observe_batch (slice 3);
  Alcotest.(check int) "cap holds" 3 (Stream.Rolling.sub_windows r);
  let slid =
    Array.init n (fun i -> (slice 1).(i) +. (slice 2).(i) +. (slice 3).(i))
  in
  Array.iteri
    (fun i v -> check_bits (Printf.sprintf "slid[%d]" i) v
        (Stream.Rolling.window_data r).(i))
    slid;
  let p = Prefix.create slid in
  let syn = Stream.Rolling.synopsis r in
  for a = 1 to n do
    check_close ~tol:1e-9
      (Printf.sprintf "slid est [%d,%d]" a n)
      (Prefix.range_sum p ~a ~b:n)
      (W.estimate syn ~a ~b:n)
  done;
  (* tight budgets stay bounded through the chained merge *)
  let small = Stream.Rolling.create ~n ~sub_windows:4 ~b:3 in
  for k = 0 to 5 do
    Array.iteri
      (fun i w -> if w > 0. then Stream.Rolling.observe small ~i:(i + 1) ~weight:w)
      (slice k);
    Stream.Rolling.rotate small
  done;
  Alcotest.(check bool)
    "window budget bounded" true
    (W.storage_words (Stream.Rolling.synopsis small) <= 2 * 3)

(* --- serving: the ingest op, stale demotion, restart ------------------- *)

let query_line ?id ?poll_budget ~synopsis ranges =
  P.encode_request
    (P.Query
       {
         id;
         synopsis;
         ranges = Array.of_list ranges;
         deadline_ms = None;
         poll_budget;
         attempt = 1;
       })

let ingest_line ?id ~synopsis deltas =
  P.encode_request (P.Ingest { id; synopsis; deltas })

type answer = {
  rung : P.rung;
  estimates : float array;
  rmse_bound : float option;
  a_stale : bool;
}

let expect_answers line =
  match P.decode_response line with
  | Ok (P.Answers { rung; estimates; rmse_bound; stale; _ }) ->
      { rung; estimates; rmse_bound; a_stale = stale }
  | Ok _ -> Alcotest.failf "expected an answer, got %S" line
  | Error e -> Alcotest.failf "undecodable response %S: %s" line e

let expect_ingested line =
  match P.decode_response line with
  | Ok (P.Ingested { applied; dirty; stale; _ }) -> (applied, dirty, stale)
  | Ok _ -> Alcotest.failf "expected an ingest ack, got %S" line
  | Error e -> Alcotest.failf "undecodable response %S: %s" line e

let expect_refused line =
  match P.decode_response line with
  | Ok (P.Refused { refusal; _ }) -> refusal
  | Ok _ -> Alcotest.failf "expected a refusal, got %S" line
  | Error e -> Alcotest.failf "undecodable response %S: %s" line e

let test_protocol_ingest_roundtrip () =
  let reqs =
    [
      P.Ingest { id = Some "i1"; synopsis = "stream"; deltas = [| (3, 1.5); (40, -0.25) |] };
      P.Ingest { id = None; synopsis = "s"; deltas = [||] };
    ]
  in
  List.iter
    (fun r ->
      match P.decode_request (P.encode_request r) with
      | Ok r' when r = r' -> ()
      | Ok _ -> Alcotest.failf "ingest round-trip changed %s" (P.encode_request r)
      | Error e -> Alcotest.failf "ingest round-trip failed: %s" e)
    reqs;
  let bad line =
    match P.decode_request line with
    | Ok _ -> Alcotest.failf "accepted %S" line
    | Error _ -> ()
  in
  bad "{\"op\":\"ingest\",\"synopsis\":\"s\"}";
  bad "{\"op\":\"ingest\",\"deltas\":[[1,1]]}";
  bad "{\"op\":\"ingest\",\"synopsis\":\"s\",\"deltas\":[[1.5,1]]}";
  bad "{\"op\":\"ingest\",\"synopsis\":\"s\",\"deltas\":[[1]]}"

let with_stream_server dir f =
  let ds = Dataset.generate "zipf-64" in
  let store = Store.open_dir dir in
  ignore (Stream.create ~config:stream_config ~store ds);
  (* a dataset matching the segment width attaches an RMSE bound to
     every segment entry — what the demotion must suppress *)
  let seg0 = Array.sub (Dataset.values ds) 0 16 in
  let config =
    {
      (Server.default_config ~store_dir:dir) with
      Server.dataset = Some (Dataset.of_floats ~name:"seg-width" seg0);
    }
  in
  let server = ok_or_fail (Server.create config) in
  Fun.protect ~finally:(fun () -> Server.close server) (fun () -> f server ds)

let test_serve_ingest_and_demotion () =
  with_tmp_dir @@ fun dir ->
  with_stream_server dir @@ fun server _ds ->
  Alcotest.(check bool) "stream resumed" true (Server.stream server <> None);
  let q1 = [ (1, 8); (9, 16) ] in
  let fresh = expect_answers (Server.handle_line server (query_line ~synopsis:"stream.seg0" q1)) in
  Alcotest.(check bool) "fresh: exact" true (fresh.rung = P.Exact);
  Alcotest.(check bool) "fresh: not stale" false fresh.a_stale;
  Alcotest.(check bool) "fresh: bound attached" true (fresh.rmse_bound <> None);
  (* the ack reports the batch and the staleness it caused *)
  let applied, dirty, stale =
    expect_ingested
      (Server.handle_line server (ingest_line ~synopsis:"stream" [| (2, 1.5) |]))
  in
  Alcotest.(check int) "ack: applied" 1 applied;
  check_bits "ack: dirty" 1.5 dirty;
  Alcotest.(check bool) "ack: stale" true stale;
  (* the same query is now demoted: flagged, bound suppressed *)
  let demoted = expect_answers (Server.handle_line server (query_line ~synopsis:"stream.seg0" q1)) in
  Alcotest.(check bool) "demoted: still exact rung" true (demoted.rung = P.Exact);
  Alcotest.(check bool) "demoted: flagged" true demoted.a_stale;
  Alcotest.(check bool)
    "demoted: pre-update RMSE bound suppressed" true (demoted.rmse_bound = None);
  (* the stale floor replays the PRE-ingest exact answer (cached while
     fresh), unflagged — the rung label carries the caveat *)
  let replay =
    expect_answers
      (Server.handle_line server (query_line ~poll_budget:1 ~synopsis:"stream.seg0" q1))
  in
  Alcotest.(check bool) "replay: stale rung" true (replay.rung = P.Stale);
  Alcotest.(check bool) "replay: unflagged" false replay.a_stale;
  Array.iteri
    (fun i v -> check_bits (Printf.sprintf "replay est %d" i) v replay.estimates.(i))
    fresh.estimates;
  (* a query first answered while stale must NOT have fed the cache *)
  let q2 = [ (3, 5) ] in
  let stale_first = expect_answers (Server.handle_line server (query_line ~synopsis:"stream.seg0" q2)) in
  Alcotest.(check bool) "stale-first: flagged" true stale_first.a_stale;
  let refusal =
    expect_refused
      (Server.handle_line server (query_line ~poll_budget:1 ~synopsis:"stream.seg0" q2))
  in
  Alcotest.(check bool)
    "stale answers never feed the cache" true (refusal = P.Deadline);
  (* untouched segments keep serving undemoted *)
  let other = expect_answers (Server.handle_line server (query_line ~synopsis:"stream.seg1" [ (1, 16) ])) in
  Alcotest.(check bool) "seg1: not stale" false other.a_stale;
  Alcotest.(check bool) "seg1: bound kept" true (other.rmse_bound <> None);
  (* ingest refusals: unknown target, invalid batch *)
  Alcotest.(check bool)
    "unknown target refused" true
    (expect_refused (Server.handle_line server (ingest_line ~synopsis:"nope" [| (1, 1.) |]))
     = P.Unknown_synopsis);
  Alcotest.(check bool)
    "invalid batch refused" true
    (expect_refused
       (Server.handle_line server (ingest_line ~synopsis:"stream" [| (1, -1e9) |]))
     = P.Bad_request);
  (* draining refuses ingests like queries *)
  ignore (Server.handle_line server (P.encode_request P.Shutdown));
  Alcotest.(check bool)
    "draining refuses ingest" true
    (expect_refused (Server.handle_line server (ingest_line ~synopsis:"stream" [| (1, 1.) |]))
     = P.Shutting_down)

let test_serve_ingest_survives_restart () =
  with_tmp_dir @@ fun dir ->
  let estimates_before =
    with_stream_server dir @@ fun server _ds ->
    ignore
      (expect_ingested
         (Server.handle_line server (ingest_line ~synopsis:"stream" [| (2, 1.5); (20, 2.) |])));
    let a = expect_answers (Server.handle_line server (query_line ~synopsis:"stream.seg0" [ (1, 16) ])) in
    Alcotest.(check bool) "flagged before restart" true a.a_stale;
    a.estimates
  in
  (* a brand-new daemon on the same store re-derives the staleness from
     the WAL: acked ingest mass is never forgotten by a restart *)
  let config = Server.default_config ~store_dir:dir in
  let server = ok_or_fail (Server.create config) in
  Fun.protect ~finally:(fun () -> Server.close server) @@ fun () ->
  let a = expect_answers (Server.handle_line server (query_line ~synopsis:"stream.seg0" [ (1, 16) ])) in
  Alcotest.(check bool) "still flagged after restart" true a.a_stale;
  Array.iteri
    (fun i v -> check_bits (Printf.sprintf "restart est %d" i) v a.estimates.(i))
    estimates_before;
  (* refresh out of band (the rebuild path), then hot reload: the new
     generation serves the rebuilt segments unflagged *)
  (match ok_or_fail (Stream.resume (Store.open_dir dir)) with
  | Some t ->
      let r = Stream.refresh t in
      Alcotest.(check bool) "refresh rebuilt" true (r.Stream.rebuilt <> [])
  | None -> Alcotest.fail "stream lost");
  (match P.decode_response (Server.reload server) with
  | Ok (P.Reloaded { generation; _ }) ->
      Alcotest.(check int) "fresh generation" 2 generation
  | _ -> Alcotest.fail "reload failed");
  let a = expect_answers (Server.handle_line server (query_line ~synopsis:"stream.seg0" [ (1, 16) ])) in
  Alcotest.(check bool) "rebuilt entry unflagged" false a.a_stale

let test_serve_batch_store_refuses_ingest () =
  with_tmp_dir @@ fun dir ->
  (* a plain (non-stream) store: queries fine, ingest refused *)
  let ds = Dataset.generate "zipf-32" in
  let store = Store.open_dir dir in
  Store.put store ~name:"plain" (Builder.build ds ~method_name:"a0" ~budget_words:16);
  let server = ok_or_fail (Server.create (Server.default_config ~store_dir:dir)) in
  Fun.protect ~finally:(fun () -> Server.close server) @@ fun () ->
  Alcotest.(check bool) "no stream" true (Server.stream server = None);
  let a = expect_answers (Server.handle_line server (query_line ~synopsis:"plain" [ (1, 32) ])) in
  Alcotest.(check bool) "plain query fine" false a.a_stale;
  Alcotest.(check bool)
    "ingest refused" true
    (expect_refused (Server.handle_line server (ingest_line ~synopsis:"plain" [| (1, 1.) |]))
     = P.Unknown_synopsis)

let () =
  Alcotest.run "stream"
    [
      ( "prefix-inc",
        [
          Alcotest.test_case "append twin (bit-exact)" `Quick test_inc_append_twin;
          Alcotest.test_case "delta twin (bit-exact)" `Quick test_inc_delta_twin;
          Alcotest.test_case "mixed twin (bit-exact)" `Quick test_inc_mixed_twin;
          Alcotest.test_case "validation" `Quick test_inc_validation;
        ] );
      ( "merge",
        [
          Alcotest.test_case "merge-chain name bounded" `Quick
            test_merge_chain_name_bounded;
          Alcotest.test_case "equal-magnitude tie-break" `Quick
            test_merge_tiebreak_fixture;
          Alcotest.test_case "merge agrees with batch build" `Quick
            test_merge_agrees_with_batch;
          Alcotest.test_case "associative up to truncation" `Quick
            test_merge_associative_up_to_truncation;
          Alcotest.test_case "histogram merge additive" `Quick
            test_histogram_merge_additive;
          Alcotest.test_case "histogram refresh" `Quick test_histogram_refresh;
          Alcotest.test_case "core dispatch" `Quick test_core_merge_dispatch;
        ] );
      ( "stream",
        [
          Alcotest.test_case "lifecycle + rebuild determinism" `Quick
            test_stream_lifecycle;
          Alcotest.test_case "refresh governor" `Quick test_stream_refresh_governor;
          Alcotest.test_case "ingest validation" `Quick
            test_stream_ingest_validation;
          Alcotest.test_case "ingest seam" `Quick test_stream_ingest_seam;
        ] );
      ( "durability",
        [
          Alcotest.test_case "resume round-trip" `Quick test_stream_resume_roundtrip;
          Alcotest.test_case "double delivery is idempotent" `Quick
            test_stream_double_delivery;
          Alcotest.test_case "ingest after compaction" `Quick
            test_stream_ingest_after_compaction;
          Alcotest.test_case "torn WAL tail" `Quick test_stream_torn_wal_tail;
          Alcotest.test_case "manifest fuzz" `Quick test_stream_manifest_fuzz;
          Alcotest.test_case "kill -9 after ack" `Quick test_stream_kill9_after_ack;
        ] );
      ( "rolling",
        [ Alcotest.test_case "rolling window" `Quick test_rolling_window ] );
      ( "serve",
        [
          Alcotest.test_case "ingest protocol round-trip" `Quick
            test_protocol_ingest_roundtrip;
          Alcotest.test_case "ingest + stale demotion" `Quick
            test_serve_ingest_and_demotion;
          Alcotest.test_case "ingest survives restart" `Quick
            test_serve_ingest_survives_restart;
          Alcotest.test_case "batch store refuses ingest" `Quick
            test_serve_batch_store_refuses_ingest;
        ] );
    ]
