(* Batch-evaluation twins: Rs_query.Batch plans compiled by
   Synopsis.batch_plan must answer bit-identically to the per-range
   estimate for every representation — the serving layer's
   byte-determinism contract rides on this equivalence.  Every vector
   workload is re-run through the bounds-checked per-range twin
   (Batch.eval_one), which is also the Debug discipline for the
   kernel's unsafe table loads. *)

module S = Rs_core.Synopsis
module Dataset = Rs_core.Dataset
module Builder = Rs_core.Builder
module Batch = Rs_query.Batch
module H = Rs_histogram.Histogram
module Bucket = Rs_histogram.Bucket
module Rng = Rs_dist.Rng

let bits = Int64.bits_of_float

let check_bits what expect got =
  if bits expect <> bits got then
    Alcotest.failf "%s: expected %h, batch answered %h" what expect got

(* The synopsis bestiary: every representation the serving layer can
   hold — Avg (plain and rounded), SAP0, explicit SAP0, SAP1,
   shared-prefix and two-sided wavelets — over both the paper dataset
   and a pseudorandom integral one. *)
let subjects () =
  let rng = Rng.create 0xBA7C4 in
  let random_ds =
    Dataset.of_ints ~name:"batch-rand"
      (Array.init 193 (fun _ -> Rng.int rng 50))
  in
  let built ds =
    List.map
      (fun m -> (Dataset.name ds ^ "/" ^ m, ds, Builder.build ds ~method_name:m ~budget_words:24))
      [
        "point-opt";
        "a0";
        "sap0";
        "sap1";
        "opt-a";
        "opt-a-rounded";
        "equi-width";
        "naive";
        "topbb";
        "wave-range-opt";
        "wave-aa";
      ]
  in
  let explicit =
    (* Sap0_explicit is not reachable through the Builder registry with
       recoverable averages, so construct one directly. *)
    let n = Dataset.n random_ds in
    let bucketing = Bucket.equi_width ~n ~buckets:7 in
    let b = Bucket.count bucketing in
    let arr scale = Array.init b (fun k -> scale *. float_of_int (k + 1) /. 3.) in
    let h =
      H.make ~name:"explicit" bucketing
        (H.Sap0_explicit { avg = arr 1.7; suff = arr 0.9; pref = arr 2.3 })
    in
    [ ("direct/sap0-explicit", random_ds, S.Histogram h);
      ( "direct/sap0-explicit-rounded",
        random_ds,
        S.Histogram
          (H.make ~rounded:true ~name:"explicit-rounded" bucketing
             (H.Sap0_explicit { avg = arr 1.7; suff = arr 0.9; pref = arr 2.3 }))
      );
    ]
  in
  built (Dataset.paper ()) @ built random_ds @ explicit

let twin_sweep () =
  let workloads = ref 0 in
  List.iter
    (fun (label, ds, syn) ->
      let n = Dataset.n ds in
      let plan = S.batch_plan syn in
      Alcotest.(check int) (label ^ ": plan domain") n (Batch.n plan);
      let rng = Rng.create (Hashtbl.hash label) in
      let check_workload ranges =
        incr workloads;
        let k = Array.length ranges in
        let out = Array.make (max 1 k) nan in
        Batch.eval plan ~ranges ~lo:0 ~hi:(k - 1) ~out;
        Array.iteri
          (fun i (a, b) ->
            let expect = S.estimate syn ~a ~b in
            check_bits
              (Printf.sprintf "%s eval (%d,%d)" label a b)
              expect out.(i);
            check_bits
              (Printf.sprintf "%s eval_one (%d,%d)" label a b)
              expect
              (Batch.eval_one plan ~a ~b))
          ranges
      in
      (* Structured workloads: k = 0, k = 1, full domain, touching and
         edge-hugging ranges. *)
      List.iter check_workload
        [
          [||];
          [| (1, 1) |];
          [| (n, n) |];
          [| (1, n) |];
          [| (1, (n + 1) / 2); ((n + 1) / 2, n) |];
          [| (1, n / 2); ((n / 2) + 1, n) |];
          Array.init (min 8 n) (fun i -> (i + 1, i + 1));
          Array.init (min 8 n) (fun i -> (n - i, n));
        ];
      (* Random workloads, mixed sizes (incl. > one 64-range chunk). *)
      for _ = 1 to 30 do
        let k = Rng.int rng 97 in
        check_workload
          (Array.init k (fun _ ->
               let a = 1 + Rng.int rng n in
               (a, a + Rng.int rng (n - a + 1))))
      done;
      (* Sub-span evaluation: lo/hi restricted to a middle window must
         leave the rest of [out] untouched. *)
      let ranges =
        Array.init 9 (fun _ ->
            let a = 1 + Rng.int rng n in
            (a, a + Rng.int rng (n - a + 1)))
      in
      let out = Array.make 9 nan in
      Batch.eval plan ~ranges ~lo:3 ~hi:5 ~out;
      Array.iteri
        (fun i (a, b) ->
          if i >= 3 && i <= 5 then
            check_bits (label ^ ": sub-span") (S.estimate syn ~a ~b) out.(i)
          else if not (Float.is_nan out.(i)) then
            Alcotest.failf "%s: sub-span eval wrote outside [3,5]" label)
        ranges)
    (subjects ());
  if !workloads < 500 then
    Alcotest.failf "only %d twin workloads ran (need >= 500)" !workloads

let prefix_twins () =
  List.iter
    (fun (label, ds, syn) ->
      match S.prefix_vector syn with
      | None -> ()
      | Some prefix ->
          let n = Dataset.n ds in
          let rng = Rng.create 0x9E1 in
          for _ = 1 to 50 do
            let k = Rng.int rng 33 in
            let ranges =
              Array.init k (fun _ ->
                  let a = 1 + Rng.int rng n in
                  (a, a + Rng.int rng (n - a + 1)))
            in
            let out = Array.make (max 1 k) nan in
            Batch.eval_prefix ~prefix ~ranges ~lo:0 ~hi:(k - 1) ~out;
            Array.iteri
              (fun i (a, b) ->
                let expect = prefix.(b) -. prefix.(a - 1) in
                check_bits (label ^ ": eval_prefix") expect out.(i);
                check_bits
                  (label ^ ": eval_prefix_one")
                  expect
                  (Batch.eval_prefix_one ~prefix ~a ~b))
              ranges
          done)
    (subjects ())

let rejects () =
  let ds = Dataset.paper () in
  let n = Dataset.n ds in
  let syn = Builder.build ds ~method_name:"point-opt" ~budget_words:24 in
  let plan = S.batch_plan syn in
  let expect_invalid what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  in
  let out = Array.make 4 0. in
  List.iter
    (fun (what, ranges) ->
      expect_invalid what (fun () ->
          Batch.eval plan ~ranges ~lo:0 ~hi:(Array.length ranges - 1) ~out))
    [
      ("a = 0", [| (0, 3) |]);
      ("b < a", [| (5, 4) |]);
      ("b > n", [| (1, n + 1) |]);
      ("late bad range", [| (1, 2); (3, 9); (0, 1) |]);
    ];
  expect_invalid "span lo < 0" (fun () ->
      Batch.eval plan ~ranges:[| (1, 2) |] ~lo:(-1) ~hi:0 ~out);
  expect_invalid "span hi too large" (fun () ->
      Batch.eval plan ~ranges:[| (1, 2) |] ~lo:0 ~hi:1 ~out);
  expect_invalid "out too short" (fun () ->
      Batch.eval plan ~ranges:(Array.make 8 (1, 2)) ~lo:0 ~hi:7
        ~out:(Array.make 4 0.));
  expect_invalid "eval_one bad range" (fun () -> Batch.eval_one plan ~a:0 ~b:1);
  expect_invalid "eval_prefix bad range" (fun () ->
      Batch.eval_prefix
        ~prefix:(Array.make (n + 1) 0.)
        ~ranges:[| (n, n + 1) |]
        ~lo:0 ~hi:0 ~out)

let () =
  Alcotest.run "batch"
    [
      ( "twins",
        [
          Alcotest.test_case "batch-vs-estimate bit twins (>=500 workloads)"
            `Quick twin_sweep;
          Alcotest.test_case "prefix-vector batch twins" `Quick prefix_twins;
          Alcotest.test_case "invalid spans and ranges reject" `Quick rejects;
        ] );
    ]
