(* The rs_serve suite: protocol codec fuzz, generation loading and
   quarantine, admission control and the exact→bound→stale ladder,
   queue shedding with backoff hints, crash-only hot reload, fault
   seams, daemon kill -9 / restart determinism over a real Unix
   socket, and the seeded chaos soak (DESIGN.md §14). *)

module Error = Rs_util.Error
module Faults = Rs_util.Faults
module Store = Rs_core.Store
module Builder = Rs_core.Builder
module Dataset = Rs_core.Dataset
module Synopsis = Rs_core.Synopsis
module Backoff = Rs_core.Supervisor.Backoff
module P = Rs_serve.Protocol
module Server = Rs_serve.Server
module Generation = Rs_serve.Generation
module Chaos = Rs_serve.Chaos
open Helpers

let tmp_path suffix =
  let path = Filename.temp_file "rs_serve" suffix in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tmp_dir f =
  let dir = tmp_path ".servestore" in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let paper = Dataset.generate "paper"
let n = Dataset.n paper

(* Store fixture: a prefix-capable histogram, a prefix-less SAP1 and a
   wavelet synopsis — the three serving shapes. *)
let fixture_methods =
  [ ("opta", "opt-a", 24); ("sap1", "sap1", 24); ("wave", "wave-range-opt", 24) ]

(* Building the three synopses is by far the slowest part of the suite
   (OPT-A dominates), so build them exactly once into a shared base
   directory and copy the store files into each test's private dir. *)
let fixture_base =
  lazy
    (let dir = tmp_path ".servefixture" in
     Unix.mkdir dir 0o755;
     at_exit (fun () -> if Sys.file_exists dir then rm_rf dir);
     let store = Store.open_dir dir in
     List.iter
       (fun (name, method_name, budget_words) ->
         Store.put store ~name (Builder.build paper ~method_name ~budget_words))
       fixture_methods;
     dir)

let copy_file src dst =
  let ic = open_in_bin src in
  let len = in_channel_length ic in
  let b = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc b;
  close_out oc

let rec copy_tree src dst =
  if Sys.is_directory src then begin
    if not (Sys.file_exists dst) then Unix.mkdir dst 0o755;
    Array.iter
      (fun f -> copy_tree (Filename.concat src f) (Filename.concat dst f))
      (Sys.readdir src)
  end
  else copy_file src dst

let make_store dir =
  copy_tree (Lazy.force fixture_base) dir;
  Store.open_dir dir

let config ?(queue = 16) ?(cache = 64) ?(jobs = 1) ?dataset dir =
  {
    (Server.default_config ~store_dir:dir) with
    Server.dataset;
    jobs;
    queue_capacity = queue;
    cache_capacity = cache;
  }

let with_server ?queue ?cache ?jobs ?dataset dir f =
  let server = Error.get (Server.create (config ?queue ?cache ?jobs ?dataset dir)) in
  Fun.protect ~finally:(fun () -> Server.close server) (fun () -> f server)

let query ?id ?deadline_ms ?poll_budget ?(attempt = 1) ~synopsis ranges =
  P.encode_request
    (P.Query
       { id; synopsis; ranges = Array.of_list ranges; deadline_ms; poll_budget; attempt })

let decode line =
  match P.decode_response line with
  | Ok r -> r
  | Error e -> Alcotest.failf "undecodable response %S: %s" line e

(* Inline-record payloads cannot escape their match; rebind them. *)
type answer = {
  generation : int;
  rung : P.rung;
  estimates : float array;
  rmse_bound : float option;
  stale : bool;
}

type refusal = {
  refusal : P.refusal;
  message : string;
  retry_after_ms : float option;
}

let expect_answers line =
  match decode line with
  | P.Answers { id = _; generation; rung; estimates; rmse_bound; stale } ->
      { generation; rung; estimates; rmse_bound; stale }
  | _ -> Alcotest.failf "expected an answer, got %S" line

let expect_refusal line =
  match decode line with
  | P.Refused { id = _; refusal; message; retry_after_ms } ->
      { refusal; message; retry_after_ms }
  | _ -> Alcotest.failf "expected a refusal, got %S" line

let check_floats msg expected actual =
  Alcotest.(check (array (float 0.))) msg expected actual;
  Array.iteri
    (fun i e ->
      if Int64.bits_of_float e <> Int64.bits_of_float actual.(i) then
        Alcotest.failf "%s: index %d not bit-identical" msg i)
    expected

(* --- Protocol codec ---------------------------------------------------- *)

let json_gen =
  let open QCheck.Gen in
  sized_size (int_range 0 3) @@ fix (fun self depth ->
      let scalar =
        oneof
          [
            return P.Null;
            map (fun b -> P.Bool b) bool;
            map (fun f -> P.Num f) (float_range (-1e9) 1e9);
            map (fun i -> P.Num (float_of_int i)) (int_range (-1000000) 1000000);
            map
              (fun s -> P.Str s)
              (string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 12));
          ]
      in
      if depth = 0 then scalar
      else
        frequency
          [
            (3, scalar);
            (1, map (fun l -> P.Arr l) (list_size (int_range 0 4) (self (depth - 1))));
            ( 1,
              map
                (fun kvs -> P.Obj kvs)
                (list_size (int_range 0 4)
                   (pair
                      (string_size ~gen:(map Char.chr (int_range 97 122))
                         (int_range 1 6))
                      (self (depth - 1)))) );
          ])

let rec json_eq a b =
  match (a, b) with
  | P.Null, P.Null -> true
  | P.Bool x, P.Bool y -> x = y
  | P.Num x, P.Num y -> Int64.bits_of_float x = Int64.bits_of_float y
  | P.Str x, P.Str y -> x = y
  | P.Arr x, P.Arr y -> List.length x = List.length y && List.for_all2 json_eq x y
  | P.Obj x, P.Obj y ->
      List.length x = List.length y
      && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && json_eq v1 v2) x y
  | _ -> false

let json_roundtrip =
  qtest ~count:500 "json round-trip"
    (QCheck.make ~print:P.json_to_string json_gen)
    (fun j ->
      match P.json_of_string (P.json_to_string j) with
      | Ok j' -> json_eq j j'
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e)

let test_json_parser_rejects () =
  let bad s =
    match P.json_of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parser accepted %S" s
  in
  bad "";
  bad "{";
  bad "[1,2";
  bad "{\"a\":1} trailing";
  bad "{\"a\"}";
  bad "nul";
  bad "+5";
  bad "'single'";
  bad "\"unterminated";
  bad "\"raw\tcontrol\"";
  bad "[1,]";
  (* depth bomb: past the parser's nesting limit *)
  bad (String.concat "" (List.init 64 (fun _ -> "[")) );
  let deep = String.concat "" (List.init 40 (fun _ -> "[")) ^ "1"
             ^ String.concat "" (List.init 40 (fun _ -> "]")) in
  bad deep

let test_request_roundtrip () =
  let reqs =
    [
      P.Ping;
      P.Metrics;
      P.Reload;
      P.Shutdown;
      P.Query
        {
          id = Some "r1";
          synopsis = "opta";
          ranges = [| (1, 5); (3, 100) |];
          deadline_ms = Some 12.5;
          poll_budget = Some 3;
          attempt = 2;
        };
      P.Query
        {
          id = None;
          synopsis = "w.x-y_z";
          ranges = [| (7, 7) |];
          deadline_ms = None;
          poll_budget = None;
          attempt = 1;
        };
    ]
  in
  List.iter
    (fun r ->
      match P.decode_request (P.encode_request r) with
      | Ok r' when r = r' -> ()
      | Ok _ -> Alcotest.failf "request round-trip changed %s" (P.encode_request r)
      | Error e -> Alcotest.failf "request round-trip failed: %s" e)
    reqs

let test_request_decode_rejects () =
  let bad s =
    match P.decode_request s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "decode_request accepted %S" s
  in
  bad "{}";
  bad "{\"op\":\"nope\"}";
  bad "{\"op\":\"query\"}";
  bad "{\"op\":\"query\",\"synopsis\":3,\"ranges\":[[1,2]]}";
  bad "{\"op\":\"query\",\"synopsis\":\"x\"}";
  bad "{\"op\":\"query\",\"synopsis\":\"x\",\"ranges\":[[1]]}";
  bad "{\"op\":\"query\",\"synopsis\":\"x\",\"ranges\":[[1,2,3]]}";
  bad "{\"op\":\"query\",\"synopsis\":\"x\",\"ranges\":[[1,2.5]]}";
  bad "{\"op\":\"query\",\"synopsis\":\"x\",\"ranges\":[[1,2]],\"attempt\":0}";
  bad "{\"op\":\"query\",\"synopsis\":\"x\",\"ranges\":[[1,2]],\"poll_budget\":0}";
  bad "{\"op\":\"query\",\"synopsis\":\"x\",\"ranges\":[[1,2]],\"deadline_ms\":-1}"

let test_response_roundtrip () =
  let resps =
    [
      P.Pong;
      P.Shutdown_ack;
      P.Reloaded { generation = 3; entries = 7; quarantined = 1 };
      P.Answers
        {
          id = Some "q";
          generation = 2;
          rung = P.Exact;
          estimates = [| 1.5; -0.25; 1e17; 0.1 |];
          rmse_bound = Some 0.125;
          stale = false;
        };
      P.Answers
        {
          id = Some "qs";
          generation = 2;
          rung = P.Exact;
          estimates = [| 4.5 |];
          rmse_bound = None;
          stale = true;
        };
      P.Ingested
        {
          id = Some "i1";
          synopsis = "stream";
          applied = 3;
          dirty = 2.5;
          stale = true;
        };
      P.Ingested
        { id = None; synopsis = "s"; applied = 0; dirty = 0.; stale = false };
      P.Answers
        {
          id = None;
          generation = 1;
          rung = P.Stale;
          estimates = [||];
          rmse_bound = None;
          stale = false;
        };
      P.Refused
        {
          id = Some "q2";
          refusal = P.Overloaded;
          message = "queue full";
          retry_after_ms = Some 20.5;
        };
      P.Refused
        { id = None; refusal = P.Bad_request; message = "no"; retry_after_ms = None };
    ]
  in
  List.iter
    (fun r ->
      match P.decode_response (P.encode_response r) with
      | Ok r' when r = r' -> ()
      | Ok _ ->
          Alcotest.failf "response round-trip changed %s" (P.encode_response r)
      | Error e -> Alcotest.failf "response round-trip failed: %s" e)
    resps;
  (* every rung label survives the wire *)
  List.iter
    (fun rung ->
      let line =
        P.encode_response
          (P.Answers
             {
               id = None;
               generation = 1;
               rung;
               estimates = [| 1. |];
               rmse_bound = None;
               stale = false;
             })
      in
      match P.decode_response line with
      | Ok (P.Answers a) when a.rung = rung -> ()
      | _ -> Alcotest.failf "rung %s lost on the wire" (P.rung_to_string rung))
    [ P.Exact; P.Bound; P.Stale ]

(* --- The allocation-lean codec, pinned against its twins --------------- *)

module Rng = Rs_dist.Rng
module Cache = Rs_serve.Cache

(* The float-rendering contract as a Printf reference: integral floats
   below 1e15 through the integer path (sign of -0 preserved), the rest
   through %.17g, non-finite as null. *)
let num_reference x =
  if not (Float.is_finite x) then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let test_float_rendering_pins () =
  let render x = P.json_to_string (P.Num x) in
  List.iter
    (fun x ->
      Alcotest.(check string)
        (Printf.sprintf "render %h" x)
        (num_reference x) (render x))
    [ 0.; 1.; -1.; 42.; -42.; 0.5; -0.25; 0.1; 1.5; 123456.789;
      1e15 -. 1.; -.(1e15 -. 1.); 1e15; -1e15; 1e15 +. 2.; 1e17; -1e17;
      4e18; 1e-300; Float.max_float; Float.min_float; epsilon_float;
      nan; infinity; neg_infinity ];
  (* the hazards, spelled out *)
  Alcotest.(check string) "negative zero keeps its sign" "-0" (render (-0.));
  Alcotest.(check string) "positive zero" "0" (render 0.);
  Alcotest.(check string)
    "largest integer-path value" "999999999999999" (render (1e15 -. 1.));
  Alcotest.(check string) "non-finite is null" "null" (render nan);
  (* -0 survives the wire with its sign bit *)
  (match P.json_of_string "-0" with
  | Ok (P.Num x) when 1. /. x = Float.neg_infinity -> ()
  | _ -> Alcotest.fail "-0 did not decode to negative zero");
  (* and a rendered float reparses to identical bits *)
  List.iter
    (fun x ->
      match P.json_of_string (render x) with
      | Ok (P.Num y) when Int64.bits_of_float y = Int64.bits_of_float x -> ()
      | _ -> Alcotest.failf "%h did not survive the wire" x)
    [ 0.; -0.; 0.1; 1.5; -0.25; 1e15; 1e17; 1e15 -. 1.; 4e18; 1e-300 ]

let test_number_fast_path_twin () =
  (* The in-place integer fast path (<= 15 digits) must parse to the
     same bits float_of_string produces, across the 15/16-digit
     boundary where the slow path takes over. *)
  let check_num s =
    match (P.json_of_string s, float_of_string_opt s) with
    | Ok (P.Num got), Some expect ->
        if Int64.bits_of_float got <> Int64.bits_of_float expect then
          Alcotest.failf "%S parsed to %h; float_of_string says %h" s got
            expect
    | Ok _, _ -> Alcotest.failf "%S did not parse to a number" s
    | Error e, Some _ -> Alcotest.failf "%S rejected: %s" s e
    | _, None -> Alcotest.failf "bad twin input %S" s
  in
  let rng = Rng.create 0xFA57 in
  for digits = 1 to 19 do
    for _ = 1 to 30 do
      let b = Buffer.create 24 in
      if Rng.bool rng then Buffer.add_char b '-';
      Buffer.add_char b (Char.chr (Char.code '1' + Rng.int rng 9));
      for _ = 2 to digits do
        Buffer.add_char b (Char.chr (Char.code '0' + Rng.int rng 10))
      done;
      check_num (Buffer.contents b)
    done
  done;
  List.iter check_num
    [ "0"; "-0"; "007"; "-0012"; "999999999999999"; "1000000000000000";
      "9007199254740993"; "123e2"; "1.5"; "-3.25e-2"; "1E6"; "0.0001" ];
  List.iter
    (fun s ->
      match P.json_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parser accepted %S" s)
    [ "+5"; ".5"; "-"; "--1"; "1-2"; "1e"; "0x10"; "1e999"; "1.2.3" ]

let test_encoder_direct_vs_ast () =
  (* The direct response writer must emit byte-for-byte what rendering
     response_json's AST would — over responses that stress every
     constructor, float shape and string escape. *)
  let rng = Rng.create 0xE2C0 in
  let rand_float () =
    match Rng.int rng 8 with
    | 0 -> 0.
    | 1 -> -0.
    | 2 -> float_of_int (Rng.int rng 1000)
    | 3 -> -.float_of_int (Rng.int rng 1000000)
    | 4 -> 1e15 +. float_of_int (Rng.int rng 100)
    | 5 -> Rng.float rng *. 1e17
    | 6 -> nan
    | _ -> Rng.float rng -. 0.5
  in
  let rand_string () =
    String.init (Rng.int rng 12) (fun _ ->
        match Rng.int rng 8 with
        | 0 -> '"'
        | 1 -> '\\'
        | 2 -> '\n'
        | 3 -> '\t'
        | 4 -> Char.chr (Rng.int rng 32)
        | _ -> Char.chr (32 + Rng.int rng 95))
  in
  let opt f = if Rng.bool rng then Some (f ()) else None in
  let rand_response () =
    match Rng.int rng 7 with
    | 0 -> P.Pong
    | 1 -> P.Shutdown_ack
    | 2 ->
        P.Reloaded
          {
            generation = Rng.int rng 100;
            entries = Rng.int rng 10;
            quarantined = Rng.int rng 4;
          }
    | 3 | 4 ->
        P.Answers
          {
            id = opt rand_string;
            generation = 1 + Rng.int rng 9;
            rung = [| P.Exact; P.Bound; P.Stale |].(Rng.int rng 3);
            estimates = Array.init (Rng.int rng 6) (fun _ -> rand_float ());
            rmse_bound = opt rand_float;
            stale = Rng.bool rng;
          }
    | 5 ->
        P.Ingested
          {
            id = opt rand_string;
            synopsis = rand_string ();
            applied = Rng.int rng 64;
            dirty = Float.abs (rand_float ());
            stale = Rng.bool rng;
          }
    | _ ->
        P.Refused
          {
            id = opt rand_string;
            refusal =
              [|
                P.Bad_request; P.Unknown_synopsis; P.Overloaded; P.Deadline;
                P.Corrupt_store; P.Shutting_down; P.Injected;
              |].(Rng.int rng 7);
            message = rand_string ();
            retry_after_ms = opt rand_float;
          }
  in
  for i = 1 to 500 do
    let r = rand_response () in
    let direct = P.encode_response r in
    match P.response_json r with
    | None -> Alcotest.failf "response_json None on a non-metrics response (%d)" i
    | Some j ->
        Alcotest.(check string)
          "direct writer = AST rendering" (P.json_to_string j) direct
  done;
  (* the metrics splice is the one deliberate exception *)
  Alcotest.(check bool)
    "metrics report has no AST twin" true
    (P.response_json (P.Metrics_report "{}") = None);
  Alcotest.(check string)
    "metrics report splices verbatim"
    "{\"ok\":true,\"op\":\"metrics\",\"report\":{\"a\":1}}"
    (P.encode_response (P.Metrics_report "{\"a\":1}"))

let test_line_mutants_never_crash () =
  (* >= 600 mutated request/response lines: the codecs must never
     raise, must decode deterministically, and every accepted mutant
     must re-encode to a fixpoint. *)
  let bases =
    [|
      query ~id:"m1" ~synopsis:"opta" ~deadline_ms:12.5 ~poll_budget:3
        [ (1, 5); (3, 100) ];
      query ~synopsis:"w.x-y_z" [ (7, 7) ];
      P.encode_request P.Ping;
      P.encode_request P.Metrics;
      P.encode_request P.Reload;
      P.encode_request P.Shutdown;
      P.encode_response
        (P.Answers
           {
             id = Some "q\"\\x";
             generation = 2;
             rung = P.Bound;
             estimates = [| 1.5; -0.; 1e17; 0.1 |];
             rmse_bound = Some 0.125;
             stale = true;
           });
      P.encode_response
        (P.Refused
           {
             id = None;
             refusal = P.Overloaded;
             message = "queue full";
             retry_after_ms = Some 20.5;
           });
    |]
  in
  let rng = Rng.create 0x9F0D in
  let pick () = bases.(Rng.int rng (Array.length bases)) in
  let mutate line =
    let len = String.length line in
    match Rng.int rng 5 with
    | 0 when len > 0 ->
        (* flip one byte *)
        let b = Bytes.of_string line in
        Bytes.set b (Rng.int rng len) (Char.chr (Rng.int rng 256));
        Bytes.to_string b
    | 1 -> String.sub line 0 (Rng.int rng (len + 1))
    | 2 ->
        let i = Rng.int rng (len + 1) in
        String.sub line 0 i
        ^ String.make 1 (Char.chr (Rng.int rng 256))
        ^ String.sub line i (len - i)
    | 3 when len > 0 ->
        let i = Rng.int rng len in
        String.sub line 0 i ^ String.sub line (i + 1) (len - i - 1)
    | _ ->
        (* splice the head of one base onto the tail of another *)
        let other = pick () in
        String.sub line 0 (Rng.int rng (len + 1))
        ^
        let ol = String.length other in
        let o = Rng.int rng (ol + 1) in
        String.sub other o (ol - o)
  in
  for i = 1 to 650 do
    let m = mutate (pick ()) in
    let d1 =
      try `Ok (P.decode_request m)
      with e -> Alcotest.failf "mutant %d %S raised %s" i m (Printexc.to_string e)
    in
    (match (d1, P.decode_request m) with
    | `Ok a, b when a = b -> ()
    | _ -> Alcotest.failf "mutant %d %S decoded unstably" i m);
    (match d1 with
    | `Ok (Ok req) ->
        let e1 = P.encode_request req in
        (match P.decode_request e1 with
        | Ok req' when P.encode_request req' = e1 -> ()
        | Ok _ -> Alcotest.failf "mutant %d: request encode not a fixpoint" i
        | Error e -> Alcotest.failf "mutant %d: re-decode refused: %s" i e)
    | _ -> ());
    match
      try P.decode_response m
      with e ->
        Alcotest.failf "mutant %d: decode_response raised %s" i
          (Printexc.to_string e)
    with
    | Ok resp ->
        let e1 = P.encode_response resp in
        (match P.decode_response e1 with
        | Ok resp' when P.encode_response resp' = e1 -> ()
        | Ok _ -> Alcotest.failf "mutant %d: response encode not a fixpoint" i
        | Error e -> Alcotest.failf "mutant %d: response re-decode refused: %s" i e)
    | Error _ -> ()
  done

(* --- The answer cache -------------------------------------------------- *)

let test_cache_eviction_pins () =
  let keys = Cache.keys_oldest_first in
  (* LRU: hits and overwrites refresh recency *)
  let c = Cache.create ~policy:Cache.Lru ~capacity:3 in
  Cache.put c "a" 1;
  Cache.put c "b" 2;
  Cache.put c "c" 3;
  Alcotest.(check (list string)) "insert order" [ "a"; "b"; "c" ] (keys c);
  Alcotest.(check (option int)) "find a" (Some 1) (Cache.find c "a");
  Alcotest.(check (list string)) "lru hit refreshes" [ "b"; "c"; "a" ] (keys c);
  Alcotest.(check bool) "mem" true (Cache.mem c "b");
  Alcotest.(check (list string)) "mem never touches" [ "b"; "c"; "a" ] (keys c);
  Cache.put c "d" 4;
  Alcotest.(check (list string)) "evicts least-recent" [ "c"; "a"; "d" ] (keys c);
  Alcotest.(check bool) "b evicted" true (Cache.find c "b" = None);
  Cache.put c "a" 10;
  Alcotest.(check (list string)) "lru overwrite refreshes" [ "c"; "d"; "a" ] (keys c);
  Alcotest.(check (option int)) "overwrite value" (Some 10) (Cache.find c "a");
  (* FIFO: pure insertion order (the PR 7 Hashtbl+Queue semantics) *)
  let f = Cache.create ~policy:Cache.Fifo ~capacity:3 in
  Cache.put f "a" 1;
  Cache.put f "b" 2;
  Cache.put f "c" 3;
  ignore (Cache.find f "a");
  Cache.put f "d" 4;
  Alcotest.(check (list string)) "fifo ignores hits" [ "b"; "c"; "d" ] (keys f);
  Cache.put f "b" 20;
  Alcotest.(check (list string)) "fifo overwrite keeps its slot" [ "b"; "c"; "d" ] (keys f);
  Alcotest.(check (option int)) "fifo overwrite value" (Some 20) (Cache.find f "b");
  Cache.put f "e" 5;
  Alcotest.(check (list string)) "fifo evicts the original slot" [ "c"; "d"; "e" ] (keys f);
  (* capacity 0 disables; negative capacity is a caller bug *)
  let z = Cache.create ~policy:Cache.Lru ~capacity:0 in
  Cache.put z "a" 1;
  Alcotest.(check int) "capacity 0 holds nothing" 0 (Cache.length z);
  Alcotest.(check bool) "capacity 0 find misses" true (Cache.find z "a" = None);
  match Cache.create ~policy:Cache.Fifo ~capacity:(-1) with
  | exception Invalid_argument _ -> ()
  | (_ : int Cache.t) -> Alcotest.fail "negative capacity accepted"

let test_cache_policy_twins () =
  (* Replay random op sequences against a reference model per policy:
     the FIFO model is exactly the PR 7 semantics, the LRU model the
     textbook recency list. *)
  let rng = Rng.create 0xCAC4E in
  let keyspace = Array.init 12 (Printf.sprintf "k%d") in
  List.iter
    (fun policy ->
      let cap = 4 in
      let c = Cache.create ~policy ~capacity:cap in
      let model = ref [] (* (key, value), oldest first *) in
      let drop k = List.filter (fun (k', _) -> k' <> k) !model in
      let model_find k =
        match List.assoc_opt k !model with
        | None -> None
        | Some v ->
            if policy = Cache.Lru then model := drop k @ [ (k, v) ];
            Some v
      in
      let model_put k v =
        if List.mem_assoc k !model then
          if policy = Cache.Lru then model := drop k @ [ (k, v) ]
          else
            model :=
              List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) !model
        else begin
          if List.length !model >= cap then model := List.tl !model;
          model := !model @ [ (k, v) ]
        end
      in
      let name = match policy with Cache.Lru -> "lru" | Cache.Fifo -> "fifo" in
      for step = 1 to 600 do
        let k = keyspace.(Rng.int rng (Array.length keyspace)) in
        (match Rng.int rng 3 with
        | 0 ->
            model_put k step;
            Cache.put c k step
        | 1 ->
            if model_find k <> Cache.find c k then
              Alcotest.failf "%s step %d: find %s diverged" name step k
        | _ ->
            if List.mem_assoc k !model <> Cache.mem c k then
              Alcotest.failf "%s step %d: mem %s diverged" name step k);
        if List.map fst !model <> Cache.keys_oldest_first c then
          Alcotest.failf "%s step %d: eviction order diverged" name step
      done;
      Alcotest.(check bool)
        (name ^ " reached capacity") true
        (Cache.length c = cap))
    [ Cache.Lru; Cache.Fifo ]

(* --- Generation loading ------------------------------------------------ *)

let test_generation_load () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  let gen = Error.get (Generation.load ~dataset:paper ~gen_id:1 dir) in
  Alcotest.(check int) "three entries" 3 (Generation.size gen);
  Alcotest.(check (list string))
    "sorted names" [ "opta"; "sap1"; "wave" ] (Generation.names gen);
  Alcotest.(check bool) "nothing quarantined" true (gen.Generation.quarantined = []);
  let opta = Option.get (Generation.find gen "opta") in
  Alcotest.(check int) "domain size" n opta.Generation.n;
  Alcotest.(check bool) "opt-a has a prefix vector" true (opta.Generation.prefix <> None);
  Alcotest.(check bool) "rmse bound present" true (opta.Generation.rmse_bound <> None);
  let sap1 = Option.get (Generation.find gen "sap1") in
  Alcotest.(check bool) "sap1 has no prefix vector" true (sap1.Generation.prefix = None);
  (* and the bound really is sqrt(SSE / #ranges) *)
  let expected =
    sqrt (Synopsis.sse paper opta.Generation.syn /. (float_of_int n *. float_of_int (n + 1) /. 2.))
  in
  check_close "rmse bound formula" expected (Option.get opta.Generation.rmse_bound)

let corrupt_entry dir name =
  let path = Filename.concat dir (name ^ ".rs") in
  let ic = open_in_bin path in
  let bytes = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string bytes in
  let mid = Bytes.length b / 2 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0xFF));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_generation_quarantines_corruption () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  corrupt_entry dir "sap1";
  let gen = Error.get (Generation.load ~gen_id:1 dir) in
  Alcotest.(check int) "two healthy entries" 2 (Generation.size gen);
  Alcotest.(check bool)
    "sap1 quarantined" true
    (List.mem_assoc "sap1" gen.Generation.quarantined);
  Alcotest.(check bool) "sap1 absent" true (Generation.find gen "sap1" = None);
  Alcotest.(check bool) "opta still served" true (Generation.find gen "opta" <> None);
  (* without a dataset there is no bound *)
  Alcotest.(check bool)
    "no dataset, no bound" true
    ((Option.get (Generation.find gen "opta")).Generation.rmse_bound = None)

let test_generation_empty_dir () =
  with_tmp_dir @@ fun dir ->
  let gen = Error.get (Generation.load ~gen_id:1 (Filename.concat dir "fresh")) in
  Alcotest.(check int) "empty store serves zero entries" 0 (Generation.size gen)

(* --- The serving ladder ------------------------------------------------ *)

let many_ranges count =
  List.init count (fun i ->
      let a = 1 + (i mod n) in
      let b = min n (a + (i mod 17)) in
      (a, b))

let test_exact_twin () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  with_server ~dataset:paper dir @@ fun server ->
  List.iter
    (fun (name, _, _) ->
      let ranges = [ (1, 1); (1, n); (3, 17); (n / 2, n) ] in
      let a = expect_answers (Server.handle_line server (query ~synopsis:name ranges)) in
      Alcotest.(check int) "generation 1" 1 a.generation;
      Alcotest.(check bool) "exact rung" true (a.rung = P.Exact);
      let entry =
        Option.get (Generation.find (Server.generation server) name)
      in
      let expected =
        Array.of_list
          (List.map (fun (a, b) -> Synopsis.estimate entry.Generation.syn ~a ~b) ranges)
      in
      check_floats (name ^ " twin") expected a.estimates;
      Alcotest.(check bool)
        "rmse bound attached" true
        (a.rmse_bound = entry.Generation.rmse_bound))
    fixture_methods

let test_budget_routing () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  with_server ~dataset:paper dir @@ fun server ->
  let ranges = many_ranges 100 in
  (* 100 ranges = 2 chunks: exact needs budget >= 4 *)
  let a = expect_answers (Server.handle_line server (query ~synopsis:"opta" ~poll_budget:4 ranges)) in
  Alcotest.(check bool) "budget 4 -> exact" true (a.rung = P.Exact);
  let b = expect_answers (Server.handle_line server (query ~synopsis:"opta" ~poll_budget:3 ranges)) in
  Alcotest.(check bool) "budget 3 -> bound" true (b.rung = P.Bound);
  Alcotest.(check bool) "bound carries the rmse bound" true (b.rmse_bound <> None);
  let entry = Option.get (Generation.find (Server.generation server) "opta") in
  let prefix = Option.get entry.Generation.prefix in
  let expected =
    Array.of_list (List.map (fun (a, b) -> prefix.(b) -. prefix.(a - 1)) ranges)
  in
  check_floats "bound = prefix arithmetic" expected b.estimates;
  (* budget 2: one working poll — stale floor; the exact answer above
     primed the cache for this key *)
  let c = expect_answers (Server.handle_line server (query ~synopsis:"opta" ~poll_budget:2 ranges)) in
  Alcotest.(check bool) "budget 2 -> stale" true (c.rung = P.Stale);
  Alcotest.(check bool) "stale has no bound" true (c.rmse_bound = None);
  check_floats "stale replays the exact answer" a.estimates c.estimates;
  Alcotest.(check int) "stale cites the caching generation" a.generation c.generation

let test_bound_answers_never_cached () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  with_server ~dataset:paper dir @@ fun server ->
  let ranges = many_ranges 100 in
  let ask ?poll_budget () =
    Server.handle_line server (query ~synopsis:"opta" ?poll_budget ranges)
  in
  (* cold cache, budget 3: the bound rung answers... *)
  let b = expect_answers (ask ~poll_budget:3 ()) in
  Alcotest.(check bool) "bound on a cold cache" true (b.rung = P.Bound);
  (* ...and must NOT have fed the stale floor *)
  let r = expect_refusal (ask ~poll_budget:2 ()) in
  Alcotest.(check bool)
    "stale floor still cold after a bound answer" true
    (r.refusal = P.Deadline);
  (* prime exact, answer bound again: the stale rung must replay the
     exact bytes — a bound answer never displaces a cached exact one *)
  let a = expect_answers (ask ()) in
  Alcotest.(check bool) "exact" true (a.rung = P.Exact);
  let again = expect_answers (ask ~poll_budget:3 ()) in
  Alcotest.(check bool) "bound again" true (again.rung = P.Bound);
  let s = expect_answers (ask ~poll_budget:2 ()) in
  Alcotest.(check bool) "stale" true (s.rung = P.Stale);
  check_floats "stale replays the exact answer" a.estimates s.estimates

let test_budget_refusal_renders_polls () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  with_server dir @@ fun server ->
  (* cold cache + budget 1: admission itself expires *)
  let r = expect_refusal (Server.handle_line server (query ~synopsis:"opta" ~poll_budget:1 [ (1, 5) ])) in
  Alcotest.(check bool) "deadline refusal" true (r.refusal = P.Deadline);
  Alcotest.(check bool) "message counts polls" true (contains r.message "poll");
  Alcotest.(check bool)
    "message does not render polls as seconds" false
    (contains r.message "s elapsed")

let test_no_prefix_falls_to_floor () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  with_server dir @@ fun server ->
  let ranges = many_ranges 100 in
  (* sap1 has no prefix vector: budget 3 cannot finish exact (needs 4),
     there is no bound rung, the cache is cold -> typed refusal *)
  let r = expect_refusal (Server.handle_line server (query ~synopsis:"sap1" ~poll_budget:3 ranges)) in
  Alcotest.(check bool) "deadline refusal" true (r.refusal = P.Deadline);
  Alcotest.(check bool) "poll units" true (contains r.message "poll");
  (* prime with an unbudgeted query, then the same budget goes stale *)
  let a = expect_answers (Server.handle_line server (query ~synopsis:"sap1" ranges)) in
  let s = expect_answers (Server.handle_line server (query ~synopsis:"sap1" ~poll_budget:3 ranges)) in
  Alcotest.(check bool) "stale after priming" true (s.rung = P.Stale);
  check_floats "stale replay" a.estimates s.estimates

let test_wall_clock_deadline () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  with_server dir @@ fun server ->
  (* a deadline that has certainly passed by the first poll *)
  let r =
    expect_refusal
      (Server.handle_line server (query ~synopsis:"opta" ~deadline_ms:1e-6 [ (1, 5) ]))
  in
  Alcotest.(check bool) "deadline refusal" true (r.refusal = P.Deadline);
  Alcotest.(check bool) "seconds units" true (contains r.message "elapsed")

let test_unknown_and_bad_ranges () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  with_server dir @@ fun server ->
  let r = expect_refusal (Server.handle_line server (query ~synopsis:"nope" [ (1, 2) ])) in
  Alcotest.(check bool) "unknown synopsis" true (r.refusal = P.Unknown_synopsis);
  List.iter
    (fun range ->
      let r = expect_refusal (Server.handle_line server (query ~synopsis:"opta" [ range ])) in
      Alcotest.(check bool) "bad range refused" true (r.refusal = P.Bad_request))
    [ (0, 5); (5, 3); (1, n + 1) ];
  let r = expect_refusal (Server.handle_line server "garbage") in
  Alcotest.(check bool) "malformed line refused" true (r.refusal = P.Bad_request)

(* --- Queue shedding ---------------------------------------------------- *)

let test_queue_shedding () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  with_server ~queue:2 dir @@ fun server ->
  let send i attempt =
    Server.push server ~cookie:i
      (query ~id:(Printf.sprintf "q%d" i) ~attempt ~synopsis:"opta" [ (1, i + 1) ])
  in
  (match send 1 1 with `Queued -> () | `Reply r -> Alcotest.failf "q1 not queued: %s" r);
  (match send 2 1 with `Queued -> () | `Reply r -> Alcotest.failf "q2 not queued: %s" r);
  Alcotest.(check int) "two pending" 2 (Server.pending server);
  (* the queue is full: these are shed with deterministic retry hints *)
  List.iter
    (fun (i, attempt) ->
      match send i attempt with
      | `Queued -> Alcotest.failf "q%d should have been shed" i
      | `Reply r ->
          let refusal = expect_refusal r in
          Alcotest.(check bool) "overloaded" true (refusal.refusal = P.Overloaded);
          let expected = 1000. *. Backoff.delay Backoff.default ~seg:0 ~attempt in
          Alcotest.(check (float 0.)) "retry hint is the backoff delay" expected
            (Option.get refusal.retry_after_ms))
    [ (3, 1); (4, 2); (5, 7) ];
  (* the queued two still answer, in order, to the right cookies *)
  (match Server.step server with
  | Some (1, line) -> ignore (expect_answers line)
  | _ -> Alcotest.fail "q1 should answer first");
  (match Server.step server with
  | Some (2, line) -> ignore (expect_answers line)
  | _ -> Alcotest.fail "q2 should answer second");
  Alcotest.(check bool) "queue drained" true (Server.step server = None)

(* --- Shutdown ---------------------------------------------------------- *)

let test_shutdown_drains () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  with_server dir @@ fun server ->
  (match Server.push server ~cookie:1 (query ~id:"q1" ~synopsis:"opta" [ (1, 5) ]) with
  | `Queued -> ()
  | `Reply r -> Alcotest.failf "query not queued: %s" r);
  (match Server.push server ~cookie:0 (P.encode_request P.Shutdown) with
  | `Reply r -> (
      match decode r with
      | P.Shutdown_ack -> ()
      | _ -> Alcotest.failf "no ack: %s" r)
  | `Queued -> Alcotest.fail "shutdown was queued");
  Alcotest.(check bool) "draining" true (Server.draining server);
  (* new queries are refused, the queued one still answers *)
  (match Server.push server ~cookie:2 (query ~synopsis:"opta" [ (1, 2) ]) with
  | `Reply r ->
      Alcotest.(check bool)
        "refused shutting-down" true
        ((expect_refusal r).refusal = P.Shutting_down)
  | `Queued -> Alcotest.fail "post-shutdown query queued");
  (match Server.step server with
  | Some (1, line) -> ignore (expect_answers line)
  | _ -> Alcotest.fail "queued query lost in shutdown");
  Alcotest.(check int) "drained" 0 (Server.pending server)

(* --- Hot reload -------------------------------------------------------- *)

let test_reload_picks_up_new_entries () =
  with_tmp_dir @@ fun dir ->
  let store = make_store dir in
  with_server ~dataset:paper dir @@ fun server ->
  let r = expect_refusal (Server.handle_line server (query ~synopsis:"extra" [ (1, 2) ])) in
  Alcotest.(check bool) "unknown before reload" true (r.refusal = P.Unknown_synopsis);
  Store.put store ~name:"extra" (Builder.build paper ~method_name:"a0" ~budget_words:12);
  (match decode (Server.handle_line server (P.encode_request P.Reload)) with
  | P.Reloaded { generation; entries; quarantined } ->
      Alcotest.(check int) "generation bumps" 2 generation;
      Alcotest.(check int) "four entries" 4 entries;
      Alcotest.(check int) "none quarantined" 0 quarantined
  | _ -> Alcotest.fail "reload failed");
  let a = expect_answers (Server.handle_line server (query ~synopsis:"extra" [ (1, 2) ])) in
  Alcotest.(check int) "answers cite the new generation" 2 a.generation

let test_reload_quarantines_and_keeps_serving () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  with_server dir @@ fun server ->
  let before = expect_answers (Server.handle_line server (query ~synopsis:"opta" [ (1, n) ])) in
  corrupt_entry dir "sap1";
  (match decode (Server.handle_line server (P.encode_request P.Reload)) with
  | P.Reloaded { generation; entries; quarantined } ->
      Alcotest.(check int) "generation bumps" 2 generation;
      Alcotest.(check int) "two healthy entries" 2 entries;
      Alcotest.(check int) "one quarantined" 1 quarantined
  | _ -> Alcotest.fail "reload should succeed past corruption");
  let r = expect_refusal (Server.handle_line server (query ~synopsis:"sap1" [ (1, 2) ])) in
  Alcotest.(check bool)
    "corrupt entry refused, typed" true
    (r.refusal = P.Unknown_synopsis);
  let after = expect_answers (Server.handle_line server (query ~synopsis:"opta" [ (1, n) ])) in
  check_floats "healthy entry identical across reload" before.estimates after.estimates

let test_reload_failure_keeps_old_generation () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  with_server dir @@ fun server ->
  Faults.arm ~count:1 "serve.reload";
  let r = expect_refusal (Server.handle_line server (P.encode_request P.Reload)) in
  Alcotest.(check bool) "typed injected refusal" true (r.refusal = P.Injected);
  Alcotest.(check int)
    "generation unchanged" 1 (Server.generation server).Generation.gen_id;
  let a = expect_answers (Server.handle_line server (query ~synopsis:"opta" [ (1, 5) ])) in
  Alcotest.(check int) "old generation keeps serving" 1 a.generation

let test_metrics_response_single_line () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  with_server dir @@ fun server ->
  (* warm the counters, then fetch the live report *)
  ignore (expect_answers (Server.handle_line server (query ~synopsis:"opta" [ (1, 5) ])));
  let line = Server.handle_line server (P.encode_request P.Metrics) in
  (* the spliced rs-metrics-v1 report must not tear the line framing
     (Metrics.to_json ends with a newline: it is also a file format) *)
  Alcotest.(check bool) "response is a single line" false (String.contains line '\n');
  match decode line with
  | P.Metrics_report report ->
      Alcotest.(check bool)
        "report is a JSON object" true
        (String.length report > 0 && report.[0] = '{' && report.[String.length report - 1] = '}')
  | _ -> Alcotest.fail "expected a metrics report"

(* --- Fault seams ------------------------------------------------------- *)

let test_seams_refuse_typed () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  with_server dir @@ fun server ->
  List.iter
    (fun seam ->
      Faults.arm ~count:1 seam;
      let r = expect_refusal (Server.handle_line server (query ~synopsis:"opta" [ (1, 5) ])) in
      Alcotest.(check bool) (seam ^ " injects typed refusal") true (r.refusal = P.Injected);
      (* one-shot: the next request is healthy *)
      let a = expect_answers (Server.handle_line server (query ~synopsis:"opta" [ (1, 5) ])) in
      Alcotest.(check bool) (seam ^ " disarms") true (a.rung = P.Exact))
    [ "serve.decode"; "serve.admit"; "serve.evaluate" ]

(* --- Parallel evaluation ----------------------------------------------- *)

let test_jobs_parity () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  let lines =
    List.map
      (fun (name, _, _) -> query ~synopsis:name (many_ranges 150))
      fixture_methods
  in
  let seq = Chaos.probe (config ~jobs:1 ~dataset:paper dir) ~lines in
  let par = Chaos.probe (config ~jobs:3 ~dataset:paper dir) ~lines in
  List.iter2 (Alcotest.(check string) "jobs=1 vs jobs=3 bit-identical") seq par

(* --- Restart determinism ----------------------------------------------- *)

let probe_lines =
  [
    query ~id:"p1" ~synopsis:"opta" [ (1, 5); (3, 100); (100, 127) ];
    query ~id:"p2" ~synopsis:"sap1" [ (1, 127) ];
    query ~id:"p3" ~synopsis:"wave" [ (2, 64); (1, 1) ];
    query ~id:"p4" ~synopsis:"opta" ~poll_budget:3 (many_ranges 100);
  ]

let test_restart_identical_answers () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  let first = Chaos.probe (config ~dataset:paper dir) ~lines:probe_lines in
  (* the first server is simply abandoned — no orderly shutdown — and a
     new one opens the same store *)
  let second = Chaos.probe (config ~dataset:paper dir) ~lines:probe_lines in
  List.iter2 (Alcotest.(check string) "restart serves identical bytes") first second

let test_batch_twin_identical_bytes () =
  (* The vectorized batch kernel, the per-range estimator loop, and
     both cache policies are contractually byte-identical on the wire. *)
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  let lines =
    probe_lines
    @ [
        query ~id:"p5" ~synopsis:"wave" (many_ranges 80);
        query ~id:"p6" ~synopsis:"opta" (many_ranges 1);
        query ~id:"p7" ~synopsis:"sap1" ~poll_budget:5 (many_ranges 130);
      ]
  in
  let base = Chaos.probe (config ~dataset:paper dir) ~lines in
  let twin =
    Chaos.probe
      { (config ~dataset:paper dir) with Server.batch_eval = false }
      ~lines
  in
  List.iter2 (Alcotest.(check string) "batch on/off byte-identical") base twin;
  let fifo =
    Chaos.probe
      { (config ~dataset:paper dir) with Server.cache_policy = Cache.Fifo }
      ~lines
  in
  List.iter2 (Alcotest.(check string) "lru/fifo byte-identical") base fifo

let cookied_lines =
  (* three requests per connection over four connections, round-robin
     interleaved — the arrival order a daemon under concurrent clients
     produces *)
  List.concat_map
    (fun i ->
      List.init 4 (fun c ->
          let name, _, _ = List.nth fixture_methods (i mod 3) in
          ( c,
            query
              ~id:(Printf.sprintf "c%d-%d" c i)
              ~synopsis:name
              (many_ranges (5 + (7 * c) + i)) )))
    [ 0; 1; 2 ]

let test_interleaved_restart_determinism () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  let run cfg = Chaos.probe_cookied cfg ~lines:cookied_lines in
  let first = run (config ~dataset:paper dir) in
  let second = run (config ~dataset:paper dir) in
  Alcotest.(check int)
    "every request answered" (List.length cookied_lines) (List.length first);
  List.iter2
    (fun (c1, l1) (c2, l2) ->
      Alcotest.(check int) "cookie order stable across restart" c1 c2;
      Alcotest.(check string) "interleaved restart serves identical bytes" l1 l2)
    first second;
  (* every response landed on the connection that asked *)
  List.iter
    (fun (c, l) ->
      match decode l with
      | P.Answers { id = Some id; _ } ->
          Alcotest.(check string)
            "id prefix matches the asking cookie"
            (Printf.sprintf "c%d-" c) (String.sub id 0 3)
      | _ -> Alcotest.failf "expected an answer on cookie %d, got %S" c l)
    first;
  (* the twin knobs change nothing on the wire, whatever the interleaving *)
  List.iter
    (fun (what, cfg) ->
      let other = run cfg in
      List.iter2
        (fun (c1, l1) (c2, l2) ->
          Alcotest.(check int) (what ^ " twin cookie order") c1 c2;
          Alcotest.(check string) (what ^ " twin bytes identical") l1 l2)
        first other)
    [
      ("batch-off", { (config ~dataset:paper dir) with Server.batch_eval = false });
      ("fifo", { (config ~dataset:paper dir) with Server.cache_policy = Cache.Fifo });
      ("jobs=3", config ~jobs:3 ~dataset:paper dir);
    ]

(* --- Request-cadence observability and the allocation gate ------------- *)

let test_request_observability () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  with_server ~dataset:paper dir @@ fun server ->
  Rs_util.Metrics.with_enabled @@ fun () ->
  Rs_util.Metrics.reset ();
  (* one request per rung: exact primes the cache, bound degrades on a
     poll budget, and a 2-poll budget replays the cached exact answer *)
  ignore
    (expect_answers (Server.handle_line server (query ~synopsis:"opta" (many_ranges 70))));
  ignore
    (expect_answers
       (Server.handle_line server (query ~synopsis:"opta" ~poll_budget:3 (many_ranges 100))));
  ignore
    (expect_answers
       (Server.handle_line server (query ~synopsis:"opta" ~poll_budget:2 (many_ranges 70))));
  let rep = Rs_util.Metrics.report () in
  let open Rs_util.Metrics in
  let hist name =
    match List.assoc_opt name rep.r_histograms with
    | Some h -> h
    | None -> Alcotest.failf "histogram %S missing from the report" name
  in
  let exact = hist "serve.eval_ns.exact" in
  Alcotest.(check int) "one exact latency sample" 1 exact.h_count;
  Alcotest.(check bool) "exact latency positive (ns)" true (exact.h_sum > 0.);
  let bound = hist "serve.eval_ns.bound" in
  Alcotest.(check int) "one bound latency sample" 1 bound.h_count;
  let stale = hist "serve.eval_ns.stale" in
  Alcotest.(check int) "one stale latency sample" 1 stale.h_count;
  let alloc = hist "serve.request_alloc" in
  Alcotest.(check int) "one allocation sample per served query" 3 alloc.h_count;
  Alcotest.(check bool) "allocation histogram counts words" true (alloc.h_sum > 0.);
  (* the names are pinned into the rs-metrics-v1 report *)
  let json = to_json () in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " in rs-metrics-v1") true (contains json name))
    [
      "serve.eval_ns.exact"; "serve.eval_ns.bound"; "serve.eval_ns.stale";
      "serve.request_alloc";
    ]

let test_exact_request_allocation_gate () =
  (* The tentpole's allocation contract: a steady-state exact request —
     decode, admission, batch evaluation, encode — allocates O(k) minor
     words.  Never hardware-waived. *)
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  with_server dir @@ fun server ->
  let k = 192 in
  let line = query ~synopsis:"opta" (many_ranges k) in
  (* prove the fixture answers exact before gating it *)
  (match decode (Server.handle_line server line) with
  | P.Answers { rung = P.Exact; _ } -> ()
  | _ -> Alcotest.fail "fixture request did not answer exact");
  let run () = ignore (Server.handle_line server line : string) in
  run ();
  run ();
  let before = Gc.minor_words () in
  run ();
  let delta = Gc.minor_words () -. before in
  let budget = 20_000. +. (200. *. float_of_int k) in
  if delta > budget then
    Alcotest.failf
      "steady-state exact request allocated %.0f minor words (O(k) budget %.0f, k = %d)"
      delta budget k

(* --- The daemon over a real socket, kill -9 included ------------------- *)

let served_exe =
  match Sys.getenv_opt "RS_SERVED" with
  | Some p -> p
  | None -> Filename.concat (Filename.dirname (Sys.getcwd ())) "bin/rs_served.exe"

let rec connect_retry path tries =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect sock (Unix.ADDR_UNIX path) with
  | () -> sock
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
    when tries > 0 ->
      Unix.close sock;
      Unix.sleepf 0.05;
      connect_retry path (tries - 1)

let read_lines sock wanted =
  let buf = Bytes.create 65536 in
  let acc = Buffer.create 256 in
  let count_newlines s = String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s in
  let deadline = Unix.gettimeofday () +. 10. in
  while
    count_newlines (Buffer.contents acc) < wanted
    && Unix.gettimeofday () < deadline
  do
    match Unix.read sock buf 0 (Bytes.length buf) with
    | 0 -> Alcotest.fail "daemon closed the connection early"
    | k -> Buffer.add_subbytes acc buf 0 k
  done;
  String.split_on_char '\n' (Buffer.contents acc)
  |> List.filter (fun s -> s <> "")

let send_and_read sock lines =
  let out = Buffer.create 256 in
  List.iter (fun l -> Buffer.add_string out (l ^ "\n")) lines;
  let payload = Buffer.contents out in
  let _ = Unix.write_substring sock payload 0 (String.length payload) in
  read_lines sock (List.length lines)

let spawn_daemon dir socket =
  Unix.create_process served_exe
    [| served_exe; "--store"; dir; "--data"; "paper"; "--socket"; socket |]
    Unix.stdin Unix.stdout Unix.stderr

let test_daemon_socket_kill_and_restart () =
  if not (Sys.file_exists served_exe) then
    Alcotest.skip ()
  else
    with_tmp_dir @@ fun dir ->
    let (_ : Store.t) = make_store dir in
    let socket = Filename.concat dir "serve.sock" in
    let pid = spawn_daemon dir socket in
    let answers1 =
      Fun.protect
        ~finally:(fun () -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
        (fun () ->
          let sock = connect_retry socket 100 in
          Fun.protect
            ~finally:(fun () -> Unix.close sock)
            (fun () -> send_and_read sock probe_lines))
    in
    (* kill -9: no shutdown handshake, no cleanup *)
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (Unix.waitpid [] pid);
    (* restart against the same store: answers must be byte-identical *)
    let pid2 = spawn_daemon dir socket in
    let answers2 =
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid2 Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid2) with Unix.Unix_error _ -> ())
        (fun () ->
          let sock = connect_retry socket 100 in
          Fun.protect
            ~finally:(fun () -> Unix.close sock)
            (fun () ->
              let a = send_and_read sock probe_lines in
              let ack = send_and_read sock [ P.encode_request P.Shutdown ] in
              Alcotest.(check (list string))
                "clean shutdown ack" [ "{\"ok\":true,\"op\":\"shutdown\"}" ] ack;
              a))
    in
    Alcotest.(check int) "one answer per probe" (List.length probe_lines) (List.length answers1);
    List.iter2
      (Alcotest.(check string) "killed daemon restarts with identical answers")
      answers1 answers2

let test_daemon_multiclient () =
  if not (Sys.file_exists served_exe) then Alcotest.skip ()
  else
    with_tmp_dir @@ fun dir ->
    let (_ : Store.t) = make_store dir in
    let socket = Filename.concat dir "serve.sock" in
    let pid = spawn_daemon dir socket in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    @@ fun () ->
    let socks = Array.init 3 (fun _ -> connect_retry socket 100) in
    Fun.protect
      ~finally:(fun () ->
        Array.iter
          (fun s -> try Unix.close s with Unix.Unix_error _ -> ())
          socks)
    @@ fun () ->
    let per_client = 4 in
    let line c i =
      query
        ~id:(Printf.sprintf "c%d-%d" c i)
        ~synopsis:"opta"
        [ (1 + c + i, min n (30 + (5 * i) + c)) ]
    in
    (* round-robin interleave: request i of every client goes out
       before request i+1 of any *)
    for i = 0 to per_client - 1 do
      Array.iteri
        (fun c sock ->
          let l = line c i ^ "\n" in
          let (_ : int) = Unix.write_substring sock l 0 (String.length l) in
          ())
        socks
    done;
    (* each client reads exactly its own answers, in its own send
       order — never a response to another connection's query *)
    Array.iteri
      (fun c sock ->
        let replies = read_lines sock per_client in
        Alcotest.(check int)
          (Printf.sprintf "client %d: one response per request" c)
          per_client (List.length replies);
        List.iteri
          (fun i reply ->
            match decode reply with
            | P.Answers { id = Some id; rung = P.Exact; _ } ->
                Alcotest.(check string)
                  "routed to the asking connection"
                  (Printf.sprintf "c%d-%d" c i)
                  id
            | _ -> Alcotest.failf "client %d got %S" c reply)
          replies)
      socks;
    (* a shutdown through one connection still acks *)
    let ack = send_and_read socks.(0) [ P.encode_request P.Shutdown ] in
    Alcotest.(check (list string))
      "shutdown acked" [ "{\"ok\":true,\"op\":\"shutdown\"}" ] ack

(* --- The chaos soak ---------------------------------------------------- *)

let run_soak ~jobs ~seed =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  Chaos.soak ~requests:250 ~seed (config ~queue:4 ~cache:64 ~jobs ~dataset:paper dir)

let check_soak outcome =
  if outcome.Chaos.violations <> [] then
    Alcotest.failf "chaos soak violated invariants:\n%s"
      (String.concat "\n" outcome.Chaos.violations);
  Alcotest.(check bool) ">=250 requests" true (outcome.Chaos.requests >= 250);
  let nonzero what v = Alcotest.(check bool) (what ^ " exercised") true (v > 0) in
  nonzero "exact" outcome.Chaos.exact;
  nonzero "stale" outcome.Chaos.stale;
  nonzero "refusals" outcome.Chaos.refused;
  nonzero "shedding" outcome.Chaos.shed;
  nonzero "injection" outcome.Chaos.injected;
  nonzero "reloads" outcome.Chaos.reloads

let test_chaos_soak () = check_soak (run_soak ~jobs:1 ~seed:0xC4A05)

let test_chaos_soak_parallel () = check_soak (run_soak ~jobs:2 ~seed:0x5EED5)

let test_chaos_soak_multiclient () =
  with_tmp_dir @@ fun dir ->
  let (_ : Store.t) = make_store dir in
  check_soak
    (Chaos.soak ~requests:250 ~clients:3 ~seed:0xC4A05
       (config ~queue:4 ~cache:64 ~jobs:1 ~dataset:paper dir))

let test_chaos_bound_rung_reached () =
  (* at least one seed must exercise the bound rung too *)
  let o = run_soak ~jobs:1 ~seed:0xB0B0 in
  if o.Chaos.violations <> [] then
    Alcotest.failf "soak violations: %s" (String.concat "\n" o.Chaos.violations);
  Alcotest.(check bool) "bound rung exercised" true (o.Chaos.bound > 0)

let () =
  Alcotest.run "serve" ~and_exit:true
    [
      ( "protocol",
        [
          json_roundtrip;
          Alcotest.test_case "parser rejects malformed" `Quick test_json_parser_rejects;
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "request decode rejects" `Quick test_request_decode_rejects;
          Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
          Alcotest.test_case "float rendering pins" `Quick test_float_rendering_pins;
          Alcotest.test_case "number fast-path twin" `Quick
            test_number_fast_path_twin;
          Alcotest.test_case "direct encoder vs AST twin" `Quick
            test_encoder_direct_vs_ast;
          Alcotest.test_case "650 line mutants never crash" `Quick
            test_line_mutants_never_crash;
        ] );
      ( "cache",
        [
          Alcotest.test_case "eviction-order pins" `Quick test_cache_eviction_pins;
          Alcotest.test_case "lru/fifo vs reference models" `Quick
            test_cache_policy_twins;
        ] );
      ( "generation",
        [
          Alcotest.test_case "load and bounds" `Quick test_generation_load;
          Alcotest.test_case "quarantines corruption" `Quick
            test_generation_quarantines_corruption;
          Alcotest.test_case "empty store" `Quick test_generation_empty_dir;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "exact twin" `Quick test_exact_twin;
          Alcotest.test_case "budget routing exact/bound/stale" `Quick
            test_budget_routing;
          Alcotest.test_case "bound answers never feed the cache" `Quick
            test_bound_answers_never_cached;
          Alcotest.test_case "budget refusal renders polls" `Quick
            test_budget_refusal_renders_polls;
          Alcotest.test_case "no prefix falls to floor" `Quick
            test_no_prefix_falls_to_floor;
          Alcotest.test_case "wall-clock deadline" `Quick test_wall_clock_deadline;
          Alcotest.test_case "unknown synopsis, bad ranges" `Quick
            test_unknown_and_bad_ranges;
        ] );
      ( "overload",
        [ Alcotest.test_case "queue sheds with backoff hints" `Quick test_queue_shedding ] );
      ( "shutdown",
        [ Alcotest.test_case "ack, drain, refuse" `Quick test_shutdown_drains ] );
      ( "reload",
        [
          Alcotest.test_case "picks up new entries" `Quick
            test_reload_picks_up_new_entries;
          Alcotest.test_case "quarantines and keeps serving" `Quick
            test_reload_quarantines_and_keeps_serving;
          Alcotest.test_case "failure keeps old generation" `Quick
            test_reload_failure_keeps_old_generation;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "live report keeps line framing" `Quick
            test_metrics_response_single_line;
          Alcotest.test_case "request-cadence latency and alloc histograms"
            `Quick test_request_observability;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "steady-state exact request is O(k) minor words"
            `Quick test_exact_request_allocation_gate;
        ] );
      ( "seams",
        [ Alcotest.test_case "typed injected refusals" `Quick test_seams_refuse_typed ] );
      ( "parallel",
        [ Alcotest.test_case "jobs=1 vs jobs=3 parity" `Quick test_jobs_parity ] );
      ( "restart",
        [
          Alcotest.test_case "in-process restart determinism" `Quick
            test_restart_identical_answers;
          Alcotest.test_case "batch/cache twins byte-identical" `Quick
            test_batch_twin_identical_bytes;
          Alcotest.test_case "interleaved multi-connection determinism" `Quick
            test_interleaved_restart_determinism;
          Alcotest.test_case "socket daemon kill -9 and restart" `Quick
            test_daemon_socket_kill_and_restart;
          Alcotest.test_case "socket daemon, three interleaved clients" `Quick
            test_daemon_multiclient;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "soak (250 requests, jobs=1)" `Quick test_chaos_soak;
          Alcotest.test_case "soak (250 requests, jobs=2)" `Quick
            test_chaos_soak_parallel;
          Alcotest.test_case "soak (250 requests, 3 connections)" `Quick
            test_chaos_soak_multiclient;
          Alcotest.test_case "bound rung reached" `Quick
            test_chaos_bound_rung_reached;
        ] );
    ]
