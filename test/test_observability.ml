(* Observability layer: metrics registry, trace spans, per-subsystem
   log sources, the RS_LOG/RS_METRICS environment contract — and pinned
   regressions for the two governor bugs this layer flushed out (the
   shared mutable [unlimited] default, and poll-budget expiries rendered
   as seconds). *)

open Helpers
module Metrics = Rs_util.Metrics
module Trace = Rs_util.Trace
module Logging = Rs_util.Logging
module Governor = Rs_util.Governor
module Error = Rs_util.Error
module Opt_a = Rs_histogram.Opt_a

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

(* Run [f] against a clean, enabled registry; leave everything disabled
   and zeroed afterwards so tests cannot leak state into each other. *)
let with_fresh f =
  Metrics.reset ();
  Trace.clear ();
  Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.disable ();
      Trace.disable ();
      Metrics.reset ();
      Trace.clear ())
    f

let counter_value report name =
  match List.assoc_opt name report.Metrics.r_counters with
  | Some v -> v
  | None -> Alcotest.failf "counter %s missing from report" name

(* --- Governor bug pins ------------------------------------------------ *)

(* Pre-PR, [Governor.unlimited] was a single process-wide mutable record
   with [started = 0.], so [elapsed unlimited] reported machine uptime
   (CLOCK_MONOTONIC now minus zero) instead of 0, and its mutable poll
   counter accumulated across every unrelated build. *)
let test_unlimited_fresh () =
  Alcotest.(check (float 0.))
    "elapsed of the ungoverned default is exactly 0" 0.
    (Governor.elapsed Governor.unlimited);
  Alcotest.(check (option (float 0.)))
    "no deadline" None
    (Governor.deadline Governor.unlimited);
  Alcotest.(check bool)
    "never expired" false
    (Governor.expired Governor.unlimited);
  for _ = 1 to 10_000 do
    (match Governor.poll Governor.unlimited with
    | Governor.Continue -> ()
    | _ -> Alcotest.fail "polling unlimited must always Continue");
    Governor.check Governor.unlimited ~stage:"test"
  done;
  (* Polling mutates nothing: elapsed is still identically 0. *)
  Alcotest.(check (float 0.))
    "elapsed unchanged by 10k polls" 0.
    (Governor.elapsed Governor.unlimited)

(* Pre-PR, two builds polling the shared default from different domains
   raced on its mutable fields.  The fix makes [unlimited] immutable, so
   concurrent polling is trivially safe. *)
let test_unlimited_two_domain_race () =
  let hammer () =
    let ok = ref true in
    for _ = 1 to 50_000 do
      (match Governor.poll Governor.unlimited with
      | Governor.Continue -> ()
      | _ -> ok := false);
      if Governor.expired Governor.unlimited then ok := false
    done;
    !ok
  in
  let d1 = Domain.spawn hammer and d2 = Domain.spawn hammer in
  let ok1 = Domain.join d1 and ok2 = Domain.join d2 in
  Alcotest.(check bool) "domain 1 saw only Continue" true ok1;
  Alcotest.(check bool) "domain 2 saw only Continue" true ok2;
  Alcotest.(check (float 0.))
    "still pristine after concurrent hammering" 0.
    (Governor.elapsed Governor.unlimited)

let test_fresh_governors_isolated () =
  let g1 = Governor.create ~poll_budget:2 () in
  let g2 = Governor.create ~poll_budget:2 () in
  ignore (Governor.poll g1);
  (match Governor.poll g1 with
  | Governor.Expired _ -> ()
  | _ -> Alcotest.fail "g1 should expire at its 2nd poll");
  match Governor.poll g2 with
  | Governor.Continue -> ()
  | _ -> Alcotest.fail "g2 must not inherit g1's poll count"

(* Pre-PR, a poll-budget expiry stuffed poll counts into the same
   [elapsed]/[deadline] floats as wall-clock seconds and every formatter
   rendered them as "%.3fs elapsed" — "3.000s elapsed (deadline 3.000s)"
   for a 3-poll budget.  The payload now carries the reason and all
   rendering goes through [describe_expiry]. *)
let test_poll_budget_reason () =
  let g = Governor.create ~poll_budget:3 () in
  ignore (Governor.poll g);
  ignore (Governor.poll g);
  (match Governor.poll g with
  | Governor.Expired { elapsed; deadline; reason = Governor.Poll_budget; _ } ->
      Alcotest.(check (float 0.)) "elapsed is the poll count" 3. elapsed;
      Alcotest.(check (float 0.)) "deadline is the budget" 3. deadline
  | Governor.Expired { reason = Governor.Wall_clock; _ } ->
      Alcotest.fail "poll-budget expiry mislabelled as wall-clock"
  | _ -> Alcotest.fail "3rd poll of a 3-poll budget must expire");
  let msg =
    Governor.describe_expiry ~reason:Governor.Poll_budget ~elapsed:3.
      ~deadline:3.
  in
  Alcotest.(check bool)
    (Printf.sprintf "%S mentions polls" msg)
    true (contains msg "poll");
  Alcotest.(check bool)
    (Printf.sprintf "%S does not claim seconds" msg)
    false
    (contains msg "s elapsed");
  (* check, the raising entry point, carries the same reason. *)
  let g = Governor.create ~poll_budget:1 () in
  (match Governor.check g ~stage:"dp" with
  | () -> Alcotest.fail "check must raise at budget exhaustion"
  | exception
      Governor.Deadline_exceeded { reason = Governor.Poll_budget; stage; _ } ->
      Alcotest.(check string) "stage" "dp" stage
  | exception Governor.Deadline_exceeded { reason = Governor.Wall_clock; _ } ->
      Alcotest.fail "check mislabelled a poll-budget expiry as wall-clock");
  (* And the typed-error formatter renders poll counts as polls. *)
  let s =
    Error.to_string
      (Error.Timeout
         {
           stage = "dp";
           elapsed = 12.;
           deadline = 16.;
           reason = Governor.Poll_budget;
         })
  in
  Alcotest.(check bool)
    (Printf.sprintf "Error.to_string %S mentions polls" s)
    true (contains s "polls")

let test_wall_clock_reason () =
  let g = Governor.create ~deadline:0.001 () in
  Unix.sleepf 0.01;
  (match Governor.poll g with
  | Governor.Expired { reason = Governor.Wall_clock; elapsed; deadline; _ } ->
      Alcotest.(check bool) "elapsed past deadline" true (elapsed > deadline)
  | _ -> Alcotest.fail "overdue wall-clock governor must expire");
  let msg =
    Governor.describe_expiry ~reason:Governor.Wall_clock ~elapsed:1.204
      ~deadline:1.
  in
  Alcotest.(check bool)
    (Printf.sprintf "%S renders seconds" msg)
    true (contains msg "elapsed")

(* Every path an expiry can take to the user must end in
   [describe_expiry].  Two boundaries are easy to regress: the typed
   conversion in [Error.guard] (the CLI and the serving daemon both rely
   on it) and the [Printexc] printer for an exception that escapes all
   the way to the runtime. *)
let test_expiry_boundary_pins () =
  (* guard: an escaped Deadline_exceeded becomes a typed Timeout with
     the reason intact, never a generic failure. *)
  let g = Governor.create ~poll_budget:1 () in
  (match Error.guard (fun () -> Governor.check g ~stage:"boundary") with
  | Error (Error.Timeout { stage; reason = Governor.Poll_budget; _ }) ->
      Alcotest.(check string) "guard keeps the stage" "boundary" stage
  | Error (Error.Timeout { reason = Governor.Wall_clock; _ }) ->
      Alcotest.fail "guard mislabelled a poll-budget expiry as wall-clock"
  | Error e -> Alcotest.failf "guard produced %s" (Error.to_string e)
  | Ok () -> Alcotest.fail "exhausted governor must not pass guard");
  (* Printexc: the registered printer routes through describe_expiry, so
     an uncaught expiry never prints poll counts as bare floats. *)
  let s =
    Printexc.to_string
      (Governor.Deadline_exceeded
         {
           stage = "dp";
           elapsed = 7.;
           deadline = 7.;
           reason = Governor.Poll_budget;
         })
  in
  Alcotest.(check bool)
    (Printf.sprintf "Printexc %S mentions polls" s)
    true (contains s "polls");
  Alcotest.(check bool)
    (Printf.sprintf "Printexc %S does not claim seconds" s)
    false
    (contains s "s elapsed")

(* --- Metrics semantics ------------------------------------------------ *)

let test_counter_gauge_semantics () =
  with_fresh @@ fun () ->
  let c = Metrics.counter "test.obs.counter" in
  Metrics.incr c;
  Metrics.add c 41;
  let g = Metrics.gauge "test.obs.gauge" in
  Metrics.set g 2.5;
  Metrics.count "test.obs.dynamic" 7;
  let r = Metrics.report () in
  Alcotest.(check int) "counter" 42 (counter_value r "test.obs.counter");
  Alcotest.(check int) "dynamic counter" 7 (counter_value r "test.obs.dynamic");
  Alcotest.(check (float 0.))
    "gauge" 2.5
    (List.assoc "test.obs.gauge" r.Metrics.r_gauges);
  (* Interning is idempotent: same handle, not a second cell. *)
  let c' = Metrics.counter "test.obs.counter" in
  Metrics.incr c';
  Alcotest.(check int)
    "re-interned counter shares the cell" 43
    (counter_value (Metrics.report ()) "test.obs.counter");
  (* reset zeroes values but keeps registrations; unset gauges stay out
     of the report. *)
  Metrics.reset ();
  let r = Metrics.report () in
  Alcotest.(check int) "reset counter" 0 (counter_value r "test.obs.counter");
  Alcotest.(check bool)
    "reset gauge unlisted" true
    (not (List.mem_assoc "test.obs.gauge" r.Metrics.r_gauges))

let test_histogram_semantics () =
  with_fresh @@ fun () ->
  let h = Metrics.histogram "test.obs.hist" in
  Metrics.observe h 0.0005 (* bucket le=1e-3 *);
  Metrics.observe h 0.25 (* bucket le=0.5 *);
  Metrics.observe h 1e9 (* overflow bucket *);
  let r = Metrics.report () in
  let s = List.assoc "test.obs.hist" r.Metrics.r_histograms in
  Alcotest.(check int) "count" 3 s.Metrics.h_count;
  check_close "sum" (0.0005 +. 0.25 +. 1e9) s.Metrics.h_sum;
  check_close "max" 1e9 s.Metrics.h_max;
  let bucket le =
    let matches (b, n) =
      if
        (if le = infinity then b = infinity
         else b <> infinity && close b le)
      then Some n
      else None
    in
    match List.filter_map matches s.Metrics.h_buckets with
    | [ n ] -> n
    | _ -> Alcotest.failf "no unique bucket with le=%g" le
  in
  Alcotest.(check int) "1e-3 bucket" 1 (bucket 1e-3);
  Alcotest.(check int) "0.5 bucket" 1 (bucket 0.5);
  Alcotest.(check int) "overflow bucket" 1 (bucket infinity);
  let last, _ = List.nth s.Metrics.h_buckets (List.length s.Metrics.h_buckets - 1) in
  Alcotest.(check bool) "last bucket bound is +inf" true (last = infinity)

let test_disabled_is_inert_and_cheap () =
  Metrics.disable ();
  Metrics.reset ();
  let c = Metrics.counter "test.obs.disabled" in
  let iters = 10_000_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    Metrics.incr c
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check int)
    "disabled recording writes nothing" 0
    (counter_value (Metrics.report ()) "test.obs.disabled");
  (* One load + one branch per call: even a slow CI box does 10M in far
     under a second.  Generous bound — this guards against accidentally
     reintroducing a lookup/allocation, not against timer noise. *)
  Alcotest.(check bool)
    (Printf.sprintf "10M disabled incrs in %.3fs (< 1s)" dt)
    true (dt < 1.0);
  (* Dynamic-name counting must not even intern when disabled. *)
  Metrics.count "test.obs.never_interned" 1;
  Alcotest.(check bool)
    "disabled count does not register the name" true
    (not
       (List.mem_assoc "test.obs.never_interned"
          (Metrics.report ()).Metrics.r_counters));
  let restored = Metrics.with_enabled (fun () -> Metrics.enabled ()) in
  Alcotest.(check bool) "with_enabled turns it on" true restored;
  Alcotest.(check bool)
    "and restores the prior state" false (Metrics.enabled ())

(* --- Trace spans ------------------------------------------------------ *)

let test_spans_record_and_survive_exceptions () =
  with_fresh @@ fun () ->
  Trace.enable ();
  let v = Trace.with_span "test.ok" (fun () -> 42) in
  Alcotest.(check int) "with_span is transparent" 42 v;
  (try Trace.with_span "test.raise" (fun () -> failwith "boom")
   with Failure _ -> ());
  let names = List.map (fun sp -> sp.Trace.sp_name) (Trace.spans ()) in
  Alcotest.(check (list string))
    "both spans recorded, oldest first" [ "test.ok"; "test.raise" ] names;
  List.iter
    (fun sp ->
      Alcotest.(check bool)
        "span duration is non-negative" true
        (sp.Trace.sp_duration >= 0.))
    (Trace.spans ());
  (* When metrics are on too, each span feeds span.<name>. *)
  let r = Metrics.report () in
  Alcotest.(check bool)
    "span.test.ok histogram present" true
    (List.mem_assoc "span.test.ok" r.Metrics.r_histograms);
  (* Disabled tracing is a straight call. *)
  Trace.disable ();
  Trace.clear ();
  ignore (Trace.with_span "test.off" (fun () -> 1));
  Alcotest.(check int) "no span when disabled" 0 (List.length (Trace.spans ()))

let test_span_ring_bounded () =
  with_fresh @@ fun () ->
  Metrics.disable () (* keep the registry out of this one *);
  Trace.enable ();
  for i = 1 to Trace.capacity + 10 do
    Trace.with_span (Printf.sprintf "ring.%d" i) (fun () -> ())
  done;
  let spans = Trace.spans () in
  Alcotest.(check int) "ring holds capacity" Trace.capacity (List.length spans);
  Alcotest.(check string)
    "oldest surviving span is capacity+10 back" "ring.11"
    (List.hd spans).Trace.sp_name

(* --- Engine integration: per-solve counters, worker isolation --------- *)

let opt_a_workload ~jobs () =
  let rng = Rng.create 31 in
  let data = random_int_data rng ~n:200 ~hi:50 in
  let p = prefix_of data in
  Opt_a.build_exact ~jobs p ~buckets:4

(* The registry is coordinator-only: workers accumulate per-cell deltas
   that the coordinator merges at chunk barriers, so an instrumented
   parallel run reports exactly the sequential counts.  If a worker ever
   touched the registry directly, unsynchronised increments would be
   lost and these totals would drift. *)
let test_jobs_invariant_counters () =
  let seq, par, seq_result, par_result =
    with_fresh @@ fun () ->
    let r1 = opt_a_workload ~jobs:1 () in
    let seq = Metrics.report () in
    Metrics.reset ();
    let r4 = opt_a_workload ~jobs:4 () in
    (seq, Metrics.report (), r1, r4)
  in
  Alcotest.(check int)
    "same DP state count either way" seq_result.Opt_a.states
    par_result.Opt_a.states;
  List.iter
    (fun name ->
      Alcotest.(check int)
        (name ^ " identical across job counts")
        (counter_value seq name) (counter_value par name))
    [ "opt_a.states"; "opt_a.pruned"; "opt_a.solves" ];
  Alcotest.(check bool)
    "recorded a nonzero state count" true
    (counter_value seq "opt_a.states" > 0);
  Alcotest.(check int)
    "sequential run never touches the pool" 0
    (counter_value seq "pool.chunks");
  Alcotest.(check bool)
    "parallel run records chunk barriers" true
    (counter_value par "pool.chunks" > 0)

(* The PR-8 kernel histograms.  [ktbl.probe_len] is absorbed from the
   coordinator's per-solve stats, and probe sequences are a function of
   insertion order — which the bit-identity contract pins across job
   counts — so its totals must twin exactly.  [pool.chunk_span] counts
   dispatched chunk widths, a parallel-only quantity (excluded from the
   twin like "pool.chunks"). *)
let histogram_stats report name =
  match List.assoc_opt name report.Metrics.r_histograms with
  | Some s -> s
  | None -> Alcotest.failf "histogram %s missing from report" name

let test_kernel_histograms () =
  let seq, par =
    with_fresh @@ fun () ->
    ignore (opt_a_workload ~jobs:1 ());
    let seq = Metrics.report () in
    Metrics.reset ();
    ignore (opt_a_workload ~jobs:4 ());
    (seq, Metrics.report ())
  in
  let probes_seq = histogram_stats seq "ktbl.probe_len" in
  let probes_par = histogram_stats par "ktbl.probe_len" in
  Alcotest.(check bool)
    "probes were recorded" true (probes_seq.Metrics.h_count > 0);
  Alcotest.(check int)
    "probe count identical across job counts" probes_seq.Metrics.h_count
    probes_par.Metrics.h_count;
  check_close "probe sum identical across job counts" probes_seq.Metrics.h_sum
    probes_par.Metrics.h_sum;
  Alcotest.(check (list int))
    "probe buckets identical across job counts"
    (List.map snd probes_seq.Metrics.h_buckets)
    (List.map snd probes_par.Metrics.h_buckets);
  (* chunk spans: only dispatched runs record them, every observation
     is a positive span no wider than the fixed 64-cell chunk, and the
     chunk counter is their count. *)
  (* unobserved histograms are omitted from the report entirely *)
  Alcotest.(check bool)
    "sequential run records no chunk spans" true
    (List.assoc_opt "pool.chunk_span" seq.Metrics.r_histograms = None);
  let spans_par = histogram_stats par "pool.chunk_span" in
  Alcotest.(check bool)
    "parallel run records chunk spans" true (spans_par.Metrics.h_count > 0);
  Alcotest.(check int)
    "one span observation per chunk barrier"
    (counter_value par "pool.chunks")
    spans_par.Metrics.h_count;
  Alcotest.(check bool)
    "spans bounded by the 64-cell chunk" true
    (spans_par.Metrics.h_max <= 64.
    && spans_par.Metrics.h_sum >= float_of_int spans_par.Metrics.h_count)

let test_disabled_run_records_nothing () =
  Metrics.disable ();
  Metrics.reset ();
  ignore (opt_a_workload ~jobs:1 ());
  Alcotest.(check int)
    "opt_a.states untouched when disabled" 0
    (counter_value (Metrics.report ()) "opt_a.states")

(* The segmented supervisor suspends observability around every inner
   build (sequential and parallel alike) and records segment-level
   counters itself, on the coordinator, at boundary cadence — so
   counter totals cannot depend on the job count.  The one deliberate
   exception is "segmented.waves": it counts pool wave barriers, which
   only exist on the parallel path, so it is excluded from the twin
   (exactly like "pool.chunks" above). *)
let segmented_workload ~jobs () =
  let options =
    { Rs_core.Builder.default_options with Rs_core.Builder.jobs }
  in
  match
    Rs_core.Supervisor.build ~options ~planner:`Uniform
      (Rs_core.Dataset.generate "zipf-256")
      ~method_name:"point-opt" ~budget_words:48 ~segments:6
  with
  | Ok (t, _) -> Rs_core.Segmented.to_string t
  | Error e ->
      Alcotest.failf "segmented workload failed: %s" (Error.to_string e)

let test_segmented_jobs_invariant_counters () =
  let seq, par, b1, b4 =
    with_fresh @@ fun () ->
    let b1 = segmented_workload ~jobs:1 () in
    let seq = Metrics.report () in
    Metrics.reset ();
    let b4 = segmented_workload ~jobs:4 () in
    (seq, Metrics.report (), b1, b4)
  in
  Alcotest.(check string) "segmented bytes identical across jobs" b1 b4;
  List.iter
    (fun name ->
      Alcotest.(check int)
        (name ^ " identical across job counts")
        (counter_value seq name) (counter_value par name))
    [
      "segmented.builds";
      "segmented.segments";
      "segmented.segments_completed";
    ];
  Alcotest.(check bool)
    "segments were actually counted" true
    (counter_value seq "segmented.segments" > 0);
  let waves r =
    Option.value ~default:0
      (List.assoc_opt "segmented.waves" r.Metrics.r_counters)
  in
  Alcotest.(check int) "sequential supervisor runs no waves" 0 (waves seq);
  Alcotest.(check bool)
    "parallel supervisor records wave barriers" true (waves par > 0)

(* --- JSON report ------------------------------------------------------ *)

(* Minimal structural scanner: brackets balance outside strings, and the
   document is one object.  Not a JSON parser, but enough to catch an
   unterminated object/array or a raw [inf]/[nan] leaking in. *)
let json_well_formed s =
  let depth = ref 0 and in_str = ref false and escaped = ref false in
  let ok = ref true in
  String.iter
    (fun c ->
      if !in_str then
        if !escaped then escaped := false
        else if c = '\\' then escaped := true
        else if c = '"' then in_str := false
        else ()
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> Stdlib.incr depth
        | '}' | ']' ->
            Stdlib.decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str

let test_json_schema () =
  with_fresh @@ fun () ->
  Metrics.incr (Metrics.counter "test.obs.json");
  Metrics.set (Metrics.gauge "test.obs.json_gauge") 1.5;
  Metrics.observe (Metrics.histogram "test.obs.json_hist") 2e9;
  let s = Metrics.to_json () in
  let has affix =
    Alcotest.(check bool)
      (Printf.sprintf "json contains %S" affix)
      true (contains s affix)
  in
  has "\"schema\": \"rs-metrics-v1\"";
  has "\"counters\": ";
  has "\"gauges\": ";
  has "\"histograms\": ";
  has "\"test.obs.json\": 1";
  has "\"test.obs.json_gauge\": 1.5";
  has "\"le\": \"+inf\"";
  Alcotest.(check bool) "well-formed" true (json_well_formed s);
  Alcotest.(check bool) "no bare inf" false (contains s "le\": inf");
  Alcotest.(check bool) "no nan" false (contains s "nan");
  (* write_json round-trips through the filesystem byte-for-byte. *)
  let path = Filename.temp_file "rs_metrics" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Metrics.write_json path;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      Alcotest.(check string) "file matches to_json" s contents)

(* --- Environment contract --------------------------------------------- *)

let test_rs_log_parsing () =
  let check_lvl s expected =
    match Logging.level_of_string s with
    | Ok l when l = expected -> ()
    | Ok l ->
        Alcotest.failf "level_of_string %S: got Ok %s" s
          (Logs.level_to_string l)
    | Error e -> Alcotest.failf "level_of_string %S: got Error %s" s e
  in
  check_lvl "debug" (Some Logs.Debug);
  check_lvl "INFO" (Some Logs.Info);
  check_lvl "warning" (Some Logs.Warning);
  check_lvl "warn" (Some Logs.Warning);
  check_lvl "error" (Some Logs.Error);
  check_lvl " off " None;
  check_lvl "quiet" None;
  (match Logging.level_of_string "bogus" with
  | Error msg ->
      Alcotest.(check bool)
        "error names the value" true (contains msg "\"bogus\"");
      Alcotest.(check bool)
        "error lists accepted levels" true (contains msg "accepted")
  | Ok _ -> Alcotest.fail "unknown RS_LOG value must be rejected, not ignored")

let test_rs_metrics_env () =
  let with_env v f =
    Unix.putenv "RS_METRICS" v;
    Fun.protect ~finally:(fun () -> Unix.putenv "RS_METRICS" "") f
  in
  with_env "1" (fun () ->
      Alcotest.(check bool) "1 is truthy" true (Logging.metrics_env_requested ()));
  with_env "yes" (fun () ->
      Alcotest.(check bool)
        "yes is truthy" true
        (Logging.metrics_env_requested ()));
  with_env "0" (fun () ->
      Alcotest.(check bool)
        "0 is falsy" false
        (Logging.metrics_env_requested ()));
  with_env "on" (fun () ->
      Metrics.disable ();
      Trace.disable ();
      Logging.setup_from_env ();
      Alcotest.(check bool)
        "setup_from_env enables metrics" true (Metrics.enabled ());
      Alcotest.(check bool)
        "setup_from_env enables tracing" true (Trace.enabled ());
      Metrics.disable ();
      Trace.disable ();
      Metrics.reset ();
      Trace.clear ())

(* Every subsystem registers its own Logs source; the engine modules are
   linked into this binary, so their sources must be visible. *)
let test_log_sources_registered () =
  Alcotest.(check string)
    "dp source name" "rs.dp"
    (Logs.Src.name Rs_histogram.Dp.log_src);
  Alcotest.(check string)
    "governor source name" "rs.governor"
    (Logs.Src.name Governor.log_src);
  let names = List.map Logs.Src.name (Logs.Src.list ()) in
  List.iter
    (fun src ->
      Alcotest.(check bool)
        (src ^ " registered") true
        (List.mem src names))
    [ "rs.dp"; "rs.governor"; "rs.pool"; "rs.checkpoint" ]

let () =
  Alcotest.run "observability"
    [
      ( "governor",
        [
          Alcotest.test_case "unlimited is fresh and immutable" `Quick
            test_unlimited_fresh;
          Alcotest.test_case "unlimited two-domain race" `Quick
            test_unlimited_two_domain_race;
          Alcotest.test_case "fresh governors isolated" `Quick
            test_fresh_governors_isolated;
          Alcotest.test_case "poll-budget expiry reason" `Quick
            test_poll_budget_reason;
          Alcotest.test_case "wall-clock expiry reason" `Quick
            test_wall_clock_reason;
          Alcotest.test_case "expiry boundary pins (guard, Printexc)" `Quick
            test_expiry_boundary_pins;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter/gauge semantics" `Quick
            test_counter_gauge_semantics;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_semantics;
          Alcotest.test_case "disabled is inert and cheap" `Quick
            test_disabled_is_inert_and_cheap;
        ] );
      ( "trace",
        [
          Alcotest.test_case "spans record (and survive raises)" `Quick
            test_spans_record_and_survive_exceptions;
          Alcotest.test_case "ring is bounded" `Quick test_span_ring_bounded;
        ] );
      ( "engine",
        [
          Alcotest.test_case "counters invariant across jobs" `Quick
            test_jobs_invariant_counters;
          Alcotest.test_case "kernel histograms (probe_len, chunk_span)" `Quick
            test_kernel_histograms;
          Alcotest.test_case "segmented counters invariant across jobs" `Quick
            test_segmented_jobs_invariant_counters;
          Alcotest.test_case "disabled run records nothing" `Quick
            test_disabled_run_records_nothing;
        ] );
      ( "json",
        [ Alcotest.test_case "schema and escaping" `Quick test_json_schema ] );
      ( "env",
        [
          Alcotest.test_case "RS_LOG parsing" `Quick test_rs_log_parsing;
          Alcotest.test_case "RS_METRICS contract" `Quick test_rs_metrics_env;
          Alcotest.test_case "log sources registered" `Quick
            test_log_sources_registered;
        ] );
    ]
