(* Crash-safety: the monotonic clock, the checkpoint-aware governor, the
   CRC-framed snapshot container and its atomic-write protocol, DP and
   OPT-A kill-and-resume (bit-identical results), the snapshot fuzzer,
   and the durable synopsis store under fault injection. *)

module Error = Rs_util.Error
module Faults = Rs_util.Faults
module Governor = Rs_util.Governor
module Mclock = Rs_util.Mclock
module Checkpoint = Rs_util.Checkpoint
module Prefix = Rs_util.Prefix
module Dataset = Rs_core.Dataset
module Builder = Rs_core.Builder
module Codec = Rs_core.Codec
module Store = Rs_core.Store
module Synopsis = Rs_core.Synopsis
module Dp = Rs_histogram.Dp
module Opt_a = Rs_histogram.Opt_a
module Bucket = Rs_histogram.Bucket
module Cost = Rs_histogram.Cost
module Histogram = Rs_histogram.Histogram
module Rng = Rs_dist.Rng

let tmp_path suffix =
  let path = Filename.temp_file "rs_ckpt" suffix in
  Sys.remove path;
  path

let with_tmp suffix f =
  let path = tmp_path suffix in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      let tmp = path ^ ".tmp" in
      if Sys.file_exists tmp then Sys.remove tmp)
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tmp_dir f =
  let dir = tmp_path ".store" in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* --- monotonic clock --- *)

let test_mclock_non_decreasing () =
  let prev = ref (Mclock.now ()) in
  for _ = 1 to 1000 do
    let t = Mclock.now () in
    if t < !prev then Alcotest.failf "clock went backwards: %f < %f" t !prev;
    prev := t
  done

(* --- governor: poll budget, checkpoint interval, snapshot mode --- *)

let test_poll_budget_expires_exactly () =
  let g = Governor.create ~poll_budget:3 () in
  (match Governor.poll g with
  | Governor.Continue -> ()
  | _ -> Alcotest.fail "poll 1 of budget 3 should continue");
  (match Governor.poll g with
  | Governor.Continue -> ()
  | _ -> Alcotest.fail "poll 2 of budget 3 should continue");
  (match Governor.poll g with
  | Governor.Expired { resumable; _ } ->
      Alcotest.(check bool) "Degrade mode is not resumable" false resumable
  | _ -> Alcotest.fail "poll 3 of budget 3 should expire");
  Alcotest.(check bool) "expired" true (Governor.expired g)

let test_snapshot_mode_is_resumable () =
  let g =
    Governor.create ~deadline_mode:Governor.Snapshot ~poll_budget:1 ()
  in
  match Governor.poll g with
  | Governor.Expired { resumable; _ } ->
      Alcotest.(check bool) "Snapshot mode is resumable" true resumable
  | _ -> Alcotest.fail "budget 1 should expire on the first poll"

let test_checkpoint_interval_fires () =
  let g = Governor.create ~checkpoint_interval:0. () in
  (match Governor.poll g with
  | Governor.Checkpoint_due -> ()
  | _ -> Alcotest.fail "zero interval should be due at every poll");
  match Governor.poll g with
  | Governor.Checkpoint_due -> ()
  | _ -> Alcotest.fail "still due at the next poll"

let test_unlimited_never_expires () =
  for _ = 1 to 100 do
    match Governor.poll Governor.unlimited with
    | Governor.Continue -> ()
    | _ -> Alcotest.fail "unlimited must always continue"
  done

let test_check_still_raises () =
  let g = Governor.create ~deadline_mode:Governor.Snapshot ~poll_budget:1 () in
  match Governor.check g ~stage:"t" with
  | () -> Alcotest.fail "check on an expired governor must raise"
  | exception Governor.Deadline_exceeded { stage; _ } ->
      Alcotest.(check string) "stage" "t" stage

(* --- checkpoint container --- *)

let test_container_roundtrip () =
  with_tmp ".ckpt" (fun path ->
      let body = "alpha 1\nbeta -0x1.8p+1\n\ngamma with spaces\n" in
      Checkpoint.save ~path ~kind:"test-kind" body;
      match Checkpoint.load ~path ~kind:"test-kind" with
      | Ok got -> Alcotest.(check string) "body survives" body got
      | Error e -> Alcotest.failf "load failed: %s" (Error.to_string e))

let test_container_wrong_kind () =
  with_tmp ".ckpt" (fun path ->
      Checkpoint.save ~path ~kind:"kind-a" "body\n";
      match Checkpoint.load ~path ~kind:"kind-b" with
      | Error (Error.Corrupt_checkpoint _) -> ()
      | Ok _ -> Alcotest.fail "wrong kind must be corrupt"
      | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e))

let test_container_missing_file () =
  match Checkpoint.load ~path:"/nonexistent/rs.ckpt" ~kind:"k" with
  | Error (Error.Io_failure _) -> ()
  | Ok _ -> Alcotest.fail "missing file must fail"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)

let test_atomic_write_preserves_old_on_torn () =
  with_tmp ".ckpt" (fun path ->
      Checkpoint.save ~path ~kind:"k" "old body\n";
      Faults.arm "atomic.torn";
      (match Checkpoint.save ~path ~kind:"k" "new body that dies halfway\n" with
      | () -> Alcotest.fail "armed torn write must raise"
      | exception Faults.Injected _ -> ());
      Faults.reset ();
      (* The destination was never touched: the tear happened in the
         temp file, before the rename. *)
      match Checkpoint.load ~path ~kind:"k" with
      | Ok body -> Alcotest.(check string) "old body intact" "old body\n" body
      | Error e -> Alcotest.failf "old file corrupt: %s" (Error.to_string e))

let test_atomic_write_preserves_old_on_rename_failure () =
  with_tmp ".ckpt" (fun path ->
      Checkpoint.save ~path ~kind:"k" "old body\n";
      Faults.arm "atomic.rename";
      (match Checkpoint.save ~path ~kind:"k" "new body\n" with
      | () -> Alcotest.fail "armed rename must raise"
      | exception Faults.Injected _ -> ());
      Faults.reset ();
      match Checkpoint.load ~path ~kind:"k" with
      | Ok body -> Alcotest.(check string) "old body intact" "old body\n" body
      | Error e -> Alcotest.failf "old file corrupt: %s" (Error.to_string e))

let test_atomic_write_seam_fires_before_bytes () =
  with_tmp ".ckpt" (fun path ->
      Faults.arm "atomic.write";
      (match Checkpoint.write_atomic ~path "content" with
      | () -> Alcotest.fail "armed write must raise"
      | exception Faults.Injected _ -> ());
      Faults.reset ();
      Alcotest.(check bool) "nothing written" false (Sys.file_exists path))

(* --- Dp checkpoint/resume --- *)

let dp_data = [| 1.; 3.; 5.; 11.; 12.; 13.; 2.; 8. |]

let dp_cost p =
  let ctx = Cost.make p in
  fun ~l ~r -> Cost.a0_bucket ctx ~l ~r

(* Exhaustive minimum of [Σ cost] over partitions of [1..n] into at most
   [buckets] parts — the brute-force twin for the DP. *)
let brute_best ~n ~buckets ~cost =
  let best = ref Float.infinity in
  (* choose rights: increasing positions ending at n *)
  let rec go last parts acc =
    if parts > buckets then ()
    else if last = n then (if acc < !best then best := acc)
    else
      for r = last + 1 to n do
        go r (parts + 1) (acc +. cost ~l:(last + 1) ~r)
      done
  in
  go 0 0 0.;
  !best

let dp_rows ~n ~b =
  let rows = ref 0 in
  for k = 1 to b do
    rows := !rows + (n - k + 1)
  done;
  !rows

let test_dp_kill_and_resume_everywhere () =
  let p = Prefix.create dp_data in
  let n = Prefix.n p in
  let buckets = 3 in
  let cost = dp_cost p in
  let base = Dp.solve ~n ~buckets ~cost () in
  Helpers.check_close ~tol:1e-9 "dp = brute force" base.Dp.cost
    (brute_best ~n ~buckets ~cost);
  let rows = dp_rows ~n ~b:buckets in
  for budget = 1 to rows do
    with_tmp ".ckpt" (fun path ->
        let governor =
          Governor.create ~deadline_mode:Governor.Snapshot ~poll_budget:budget
            ()
        in
        match
          Dp.solve ~governor ~checkpoint_path:path ~fingerprint:"dp-test" ~n
            ~buckets ~cost ()
        with
        | _ -> Alcotest.failf "budget %d should interrupt" budget
        | exception Governor.Interrupted { checkpoint; _ } ->
            let resumed =
              Dp.solve ~resume_from:checkpoint ~fingerprint:"dp-test" ~n
                ~buckets ~cost ()
            in
            if not (Float.equal resumed.Dp.cost base.Dp.cost) then
              Alcotest.failf "budget %d: resumed cost %.17g <> %.17g" budget
                resumed.Dp.cost base.Dp.cost;
            Alcotest.(check (array int))
              (Printf.sprintf "budget %d: rights" budget)
              (Bucket.rights base.Dp.bucketing)
              (Bucket.rights resumed.Dp.bucketing))
  done;
  (* One more poll than there are rows: the run completes untouched. *)
  with_tmp ".ckpt" (fun path ->
      let governor =
        Governor.create ~deadline_mode:Governor.Snapshot
          ~poll_budget:(rows + 1) ()
      in
      let r =
        Dp.solve ~governor ~checkpoint_path:path ~fingerprint:"dp-test" ~n
          ~buckets ~cost ()
      in
      Alcotest.(check bool)
        "completes past the last row" true
        (Float.equal r.Dp.cost base.Dp.cost))

let test_dp_resume_rejects_wrong_fingerprint () =
  let p = Prefix.create dp_data in
  let n = Prefix.n p in
  let cost = dp_cost p in
  with_tmp ".ckpt" (fun path ->
      let governor =
        Governor.create ~deadline_mode:Governor.Snapshot ~poll_budget:4 ()
      in
      (match
         Dp.solve ~governor ~checkpoint_path:path ~fingerprint:"right" ~n
           ~buckets:3 ~cost ()
       with
      | _ -> Alcotest.fail "should interrupt"
      | exception Governor.Interrupted _ -> ());
      (match Dp.solve ~resume_from:path ~fingerprint:"wrong" ~n ~buckets:3 ~cost () with
      | _ -> Alcotest.fail "wrong fingerprint must be refused"
      | exception Error.Rs_error (Error.Corrupt_checkpoint _) -> ());
      match Dp.solve ~resume_from:path ~fingerprint:"right" ~n ~buckets:2 ~cost () with
      | _ -> Alcotest.fail "wrong bucket count must be refused"
      | exception Error.Rs_error (Error.Corrupt_checkpoint _) -> ())

(* --- OPT-A kill-and-resume --- *)

let opt_a_data = [| 1.; 3.; 5.; 11.; 12.; 13.; 2.; 8.; 4.; 6. |]
let opt_a_key_cap = 100_000
let opt_a_buckets = 4

let opt_a_base () =
  let p = Prefix.create opt_a_data in
  Opt_a.build_exact ~key_cap:opt_a_key_cap p ~buckets:opt_a_buckets

let check_same_result budget base (r : Opt_a.result) =
  let label what = Printf.sprintf "budget %d: %s" budget what in
  if not (Float.equal r.Opt_a.sse base.Opt_a.sse) then
    Alcotest.failf "%s: %.17g <> %.17g" (label "sse") r.Opt_a.sse base.Opt_a.sse;
  Alcotest.(check (array int)) (label "rights")
    (Bucket.rights (Histogram.bucketing base.Opt_a.histogram))
    (Bucket.rights (Histogram.bucketing r.Opt_a.histogram));
  Alcotest.(check int) (label "states") base.Opt_a.states r.Opt_a.states

let test_opt_a_kill_and_resume_everywhere () =
  let p = Prefix.create opt_a_data in
  let base = opt_a_base () in
  (* Brute-force twin on the range-SSE objective: the DP's answer equals
     the histogram's true range SSE, interrupted or not. *)
  Helpers.check_close ~tol:1e-6 "opt-a sse = brute sse" base.Opt_a.sse
    (Helpers.hist_sse p base.Opt_a.histogram);
  let rows = dp_rows ~n:(Prefix.n p) ~b:opt_a_buckets in
  let completed = ref 0 in
  for budget = 1 to rows + 1 do
    with_tmp ".ckpt" (fun path ->
        let governor =
          Governor.create ~deadline_mode:Governor.Snapshot ~poll_budget:budget
            ()
        in
        match
          Opt_a.build_exact ~key_cap:opt_a_key_cap ~governor
            ~checkpoint_path:path p ~buckets:opt_a_buckets
        with
        | r ->
            incr completed;
            check_same_result budget base r
        | exception Governor.Interrupted { checkpoint; _ } ->
            let resumed =
              Opt_a.build_exact ~key_cap:opt_a_key_cap ~resume_from:checkpoint
                p ~buckets:opt_a_buckets
            in
            check_same_result budget base resumed)
  done;
  Alcotest.(check bool) "the largest budget completes" true (!completed >= 1)

let test_opt_a_double_interrupt_chain () =
  (* Interrupt, resume with another tiny budget (interrupting again from
     the snapshot), resume once more to completion: snapshots chain. *)
  let p = Prefix.create opt_a_data in
  let base = opt_a_base () in
  with_tmp ".ckpt" (fun path ->
      let g1 =
        Governor.create ~deadline_mode:Governor.Snapshot ~poll_budget:5 ()
      in
      (match
         Opt_a.build_exact ~key_cap:opt_a_key_cap ~governor:g1
           ~checkpoint_path:path p ~buckets:opt_a_buckets
       with
      | _ -> Alcotest.fail "first run should interrupt"
      | exception Governor.Interrupted _ -> ());
      let g2 =
        Governor.create ~deadline_mode:Governor.Snapshot ~poll_budget:7 ()
      in
      (match
         Opt_a.build_exact ~key_cap:opt_a_key_cap ~governor:g2
           ~checkpoint_path:path ~resume_from:path p ~buckets:opt_a_buckets
       with
      | _ -> Alcotest.fail "second run should interrupt again"
      | exception Governor.Interrupted _ -> ());
      let final =
        Opt_a.build_exact ~key_cap:opt_a_key_cap ~resume_from:path p
          ~buckets:opt_a_buckets
      in
      check_same_result 0 base final)

let test_opt_a_periodic_checkpoint_resume () =
  (* checkpoint_interval 0 → a snapshot every row; kill the process
     abruptly (simulated by Interrupted at an arbitrary later row) and
     resume from the periodic snapshot. *)
  let p = Prefix.create opt_a_data in
  let base = opt_a_base () in
  with_tmp ".ckpt" (fun path ->
      let governor =
        Governor.create ~deadline_mode:Governor.Snapshot ~checkpoint_interval:0.
          ~poll_budget:11 ()
      in
      (match
         Opt_a.build_exact ~key_cap:opt_a_key_cap ~governor
           ~checkpoint_path:path p ~buckets:opt_a_buckets
       with
      | _ -> Alcotest.fail "should interrupt"
      | exception Governor.Interrupted _ -> ());
      let resumed =
        Opt_a.build_exact ~key_cap:opt_a_key_cap ~resume_from:path p
          ~buckets:opt_a_buckets
      in
      check_same_result 11 base resumed)

let test_opt_a_resume_rejects_wrong_data () =
  let p = Prefix.create opt_a_data in
  with_tmp ".ckpt" (fun path ->
      let governor =
        Governor.create ~deadline_mode:Governor.Snapshot ~poll_budget:6 ()
      in
      (match
         Opt_a.build_exact ~key_cap:opt_a_key_cap ~governor
           ~checkpoint_path:path p ~buckets:opt_a_buckets
       with
      | _ -> Alcotest.fail "should interrupt"
      | exception Governor.Interrupted _ -> ());
      let other = Prefix.create [| 2.; 3.; 5.; 11.; 12.; 13.; 2.; 8.; 4.; 6. |] in
      (match
         Opt_a.build_exact ~key_cap:opt_a_key_cap ~resume_from:path other
           ~buckets:opt_a_buckets
       with
      | _ -> Alcotest.fail "different data must be refused"
      | exception Error.Rs_error (Error.Corrupt_checkpoint _) -> ());
      match
        Opt_a.build_exact ~key_cap:(opt_a_key_cap + 1) ~resume_from:path p
          ~buckets:opt_a_buckets
      with
      | _ -> Alcotest.fail "different key_cap must be refused"
      | exception Error.Rs_error (Error.Corrupt_checkpoint _) -> ())

(* --- snapshot fuzzer: >= 300 mutants, never crash, never wrong --- *)

let mutate rng s =
  let len = String.length s in
  match Rng.int rng 3 with
  | 0 ->
      (* flip one bit *)
      let i = Rng.int rng len in
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8)));
      Bytes.to_string b
  | 1 ->
      (* truncate *)
      String.sub s 0 (Rng.int rng len)
  | _ ->
      (* duplicate a chunk onto the tail *)
      let at = Rng.int rng len in
      s ^ String.sub s at (Rng.int rng (len - at))

let test_snapshot_fuzzer () =
  let p = Prefix.create opt_a_data in
  let base = opt_a_base () in
  with_tmp ".ckpt" (fun path ->
      let governor =
        Governor.create ~deadline_mode:Governor.Snapshot ~poll_budget:9 ()
      in
      (match
         Opt_a.build_exact ~key_cap:opt_a_key_cap ~governor
           ~checkpoint_path:path p ~buckets:opt_a_buckets
       with
      | _ -> Alcotest.fail "should interrupt"
      | exception Governor.Interrupted _ -> ());
      let pristine = read_file path in
      let rng = Rng.create 0xC0FFEE in
      let detected = ref 0 in
      for i = 1 to 350 do
        write_file path (mutate rng pristine);
        match
          Opt_a.build_exact ~key_cap:opt_a_key_cap ~resume_from:path p
            ~buckets:opt_a_buckets
        with
        | r ->
            (* A mutation the checks cannot distinguish from the real
               snapshot must still produce the right answer. *)
            check_same_result i base r
        | exception Error.Rs_error (Error.Corrupt_checkpoint _) -> incr detected
        | exception e ->
            Alcotest.failf "mutant %d: unexpected exception %s" i
              (Printexc.to_string e)
      done;
      if !detected < 300 then
        Alcotest.failf "only %d/350 mutants detected as corrupt" !detected)

(* --- codec atomic save --- *)

let a_synopsis () =
  Builder.build (Dataset.of_floats dp_data) ~method_name:"sap0" ~budget_words:12

let test_codec_save_is_atomic () =
  with_tmp ".rs" (fun path ->
      let s = a_synopsis () in
      Codec.save s path;
      let original = read_file path in
      Faults.arm "atomic.torn";
      (match Codec.save (a_synopsis ()) path with
      | () -> Alcotest.fail "torn save must raise"
      | exception Faults.Injected _ -> ());
      Faults.reset ();
      Alcotest.(check string) "file untouched by torn save" original
        (read_file path);
      match Codec.load_result path with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "still loadable: %s" (Error.to_string e))

let test_codec_save_result_reports_io () =
  let s = a_synopsis () in
  (match Codec.save_result s "/nonexistent-dir/x.rs" with
  | Error (Error.Io_failure { path; _ }) ->
      Alcotest.(check bool) "path mentioned" true
        (Helpers.contains path "nonexistent")
  | Ok () -> Alcotest.fail "unwritable path must fail"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e));
  Faults.arm "codec.save";
  (match Codec.save_result s "/tmp/never-written.rs" with
  | Error (Error.Io_failure _) -> ()
  | Ok () -> Alcotest.fail "armed codec.save must fail"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e));
  Faults.reset ()

(* --- store --- *)

let test_store_roundtrip () =
  with_tmp_dir (fun dir ->
      let store = Store.open_dir dir in
      let s = a_synopsis () in
      Store.put store ~name:"first" s;
      Alcotest.(check (list string)) "listed" [ "first" ] (Store.list store);
      (match Store.get store ~name:"first" with
      | Ok got ->
          Alcotest.(check string) "identical bytes" (Codec.to_string s)
            (Codec.to_string got)
      | Error e -> Alcotest.failf "get failed: %s" (Error.to_string e));
      (* Reopening reads the manifest, not leftover state. *)
      let reopened = Store.open_dir dir in
      Alcotest.(check (list string)) "survives reopen" [ "first" ]
        (Store.list reopened);
      Store.remove store ~name:"first";
      Alcotest.(check (list string)) "removed" [] (Store.list store))

let test_store_rejects_bad_names () =
  with_tmp_dir (fun dir ->
      let store = Store.open_dir dir in
      let s = a_synopsis () in
      List.iter
        (fun name ->
          match Store.put store ~name s with
          | () -> Alcotest.failf "name %S must be rejected" name
          | exception Error.Rs_error (Error.Invalid_input _) -> ())
        [ ""; "has/slash"; "../escape"; ".hidden"; "MANIFEST"; "sp ace" ])

let test_store_heals_corrupt_manifest () =
  with_tmp_dir (fun dir ->
      let store = Store.open_dir dir in
      Store.put store ~name:"keep" (a_synopsis ());
      write_file (Filename.concat dir "MANIFEST") "total garbage";
      let healed = Store.open_dir dir in
      Alcotest.(check (list string)) "rebuilt from entries" [ "keep" ]
        (Store.list healed);
      match Store.get healed ~name:"keep" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "entry lost: %s" (Error.to_string e))

let test_store_fsck_quarantines_and_adopts () =
  with_tmp_dir (fun dir ->
      let store = Store.open_dir dir in
      Store.put store ~name:"good" (a_synopsis ());
      Store.put store ~name:"bad" (a_synopsis ());
      (* Corrupt one entry behind the manifest's back, drop a stray tmp
         file, and sneak in a valid unmanifested entry. *)
      write_file (Filename.concat dir "bad.rs") "rotten bytes";
      write_file (Filename.concat dir "junk.rs.tmp") "half a write";
      write_file
        (Filename.concat dir "orphan.rs")
        (Codec.to_string (a_synopsis ()));
      let r = Store.fsck store in
      Alcotest.(check (list string)) "ok" [ "good"; "orphan" ] r.Store.ok;
      Alcotest.(check (list string)) "quarantined" [ "bad" ]
        (List.map fst r.Store.quarantined);
      Alcotest.(check (list string)) "tmp removed" [ "junk.rs.tmp" ]
        r.Store.removed_tmp;
      Alcotest.(check bool) "manifest rebuilt" true r.Store.manifest_rebuilt;
      Alcotest.(check bool) "quarantine holds the corpse" true
        (Sys.file_exists (Filename.concat dir "quarantine/bad.rs"));
      (* The healthy entries still serve. *)
      (match Store.get store ~name:"good" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "good entry lost: %s" (Error.to_string e));
      (* A clean store fscks clean. *)
      let r2 = Store.fsck store in
      Alcotest.(check (list string)) "second pass ok" [ "good"; "orphan" ]
        r2.Store.ok;
      Alcotest.(check bool) "second pass is clean" false
        r2.Store.manifest_rebuilt)

let test_store_put_fault_seams () =
  with_tmp_dir (fun dir ->
      let store = Store.open_dir dir in
      Store.put store ~name:"settled" (a_synopsis ());
      Faults.arm "store.put";
      (match Store.put store ~name:"doomed" (a_synopsis ()) with
      | () -> Alcotest.fail "armed store.put must raise"
      | exception Faults.Injected _ -> ());
      Faults.reset ();
      Alcotest.(check (list string)) "nothing half-added" [ "settled" ]
        (Store.list store);
      (* Manifest write dies after the entry file is durable: the entry
         is orphaned, and fsck adopts it. *)
      Faults.arm "store.manifest";
      (match Store.put store ~name:"orphan" (a_synopsis ()) with
      | () -> Alcotest.fail "armed store.manifest must raise"
      | exception Faults.Injected _ -> ());
      Faults.reset ();
      let reopened = Store.open_dir dir in
      let r = Store.fsck reopened in
      Alcotest.(check (list string)) "orphan adopted" [ "orphan"; "settled" ]
        r.Store.ok)

let test_store_get_detects_swapped_entry () =
  with_tmp_dir (fun dir ->
      let store = Store.open_dir dir in
      Store.put store ~name:"a" (a_synopsis ());
      let other =
        Builder.build (Dataset.of_floats dp_data) ~method_name:"equi-width"
          ~budget_words:12
      in
      (* A valid codec file, but not the one the manifest promised. *)
      write_file (Filename.concat dir "a.rs") (Codec.to_string other);
      match Store.get store ~name:"a" with
      | Error (Error.Corrupt_synopsis _) -> ()
      | Ok _ -> Alcotest.fail "swap must be detected by the manifest CRC"
      | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e))

(* --- store read-side concurrency (DESIGN.md §14) ---

   The serving daemon holds a store generation open while writers and
   repair passes run against the same directory.  The contract: decoded
   data is immune (it holds no file handles), stale handles get typed
   errors (never torn bytes, never a crash), and a fresh [open_dir]
   always heals. *)

module Generation = Rs_serve.Generation

let test_store_fsck_under_held_generation () =
  with_tmp_dir (fun dir ->
      let writer = Store.open_dir dir in
      Store.put writer ~name:"good" (a_synopsis ());
      Store.put writer ~name:"doomed" (a_synopsis ());
      (* The reader decodes the whole generation up front, then holds a
         second (soon stale) handle on the same directory. *)
      let gen = Error.get (Generation.load ~gen_id:1 dir) in
      let stale = Store.open_dir dir in
      Alcotest.(check int) "reader decoded both" 2 (Generation.size gen);
      (* Rot one entry and repair behind the reader's back. *)
      write_file (Filename.concat dir "doomed.rs") "rotten bytes";
      let r = Store.fsck writer in
      Alcotest.(check (list string))
        "quarantined" [ "doomed" ]
        (List.map fst r.Store.quarantined);
      (* The decoded generation is immune: fsck moved the file, not the
         reader's memory. *)
      Alcotest.(check int) "generation still serves both" 2 (Generation.size gen);
      (match Generation.find gen "doomed" with
      | Some e -> ignore (Synopsis.estimate e.Generation.syn ~a:1 ~b:1)
      | None -> Alcotest.fail "decoded entry vanished from the generation");
      (* A fresh read through the stale handle is a typed error — the
         file is gone — never an exception. *)
      (match Store.get stale ~name:"doomed" with
      | Error (Error.Io_failure _) -> ()
      | Ok _ -> Alcotest.fail "stale read of a quarantined entry must fail"
      | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e));
      (* Healthy entries keep serving through the stale handle. *)
      match Store.get stale ~name:"good" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "healthy entry lost: %s" (Error.to_string e))

let test_store_stale_handle_after_put () =
  with_tmp_dir (fun dir ->
      let writer = Store.open_dir dir in
      Store.put writer ~name:"a" (a_synopsis ());
      let reader = Store.open_dir dir in
      (* The writer atomically replaces the entry after the reader
         opened.  The reader's manifest snapshot pins the old CRC, so it
         cannot tell a newer version from corruption — the safe answer
         is the typed mismatch, never the torn in-between (there is no
         in-between: the rename is atomic). *)
      let replacement =
        Builder.build (Dataset.of_floats dp_data) ~method_name:"equi-width"
          ~budget_words:12
      in
      Store.put writer ~name:"a" replacement;
      (match Store.get reader ~name:"a" with
      | Error (Error.Corrupt_synopsis _) -> ()
      | Ok _ -> Alcotest.fail "stale CRC must detect the replaced entry"
      | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e));
      (* Re-opening — the daemon's reload — heals: the fresh generation
         sees exactly the writer's bytes. *)
      let fresh = Store.open_dir dir in
      match Store.get fresh ~name:"a" with
      | Ok got ->
          Alcotest.(check string) "fresh handle reads the writer's bytes"
            (Codec.to_string replacement) (Codec.to_string got)
      | Error e -> Alcotest.failf "fresh open must heal: %s" (Error.to_string e))

let test_store_open_races_atomic_rename () =
  with_tmp_dir (fun dir ->
      let writer = Store.open_dir dir in
      Store.put writer ~name:"a" (a_synopsis ());
      let replacement =
        Builder.build (Dataset.of_floats dp_data) ~method_name:"equi-width"
          ~budget_words:12
      in
      (* Freeze the put exactly between its two atomic steps: the entry
         rename landed, the manifest rewrite did not — the window a
         concurrent reader can open into. *)
      Faults.arm "store.manifest";
      (match Store.put writer ~name:"a" replacement with
      | () -> Alcotest.fail "armed store.manifest must raise"
      | exception Faults.Injected _ -> ());
      Faults.reset ();
      let reader = Store.open_dir dir in
      (* The reader sees the old manifest against the new bytes: a typed
         mismatch, not garbage. *)
      (match Store.get reader ~name:"a" with
      | Error (Error.Corrupt_synopsis _) -> ()
      | Ok _ -> Alcotest.fail "mid-window read must be a typed mismatch"
      | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e));
      (* fsck adopts the new bytes (they decode; the manifest was simply
         behind) and the entry serves again. *)
      let r = Store.fsck reader in
      Alcotest.(check bool) "manifest rebuilt" true r.Store.manifest_rebuilt;
      Alcotest.(check bool) "entry healthy" true (List.mem "a" r.Store.ok);
      match Store.get reader ~name:"a" with
      | Ok got ->
          Alcotest.(check string) "adopted the writer's bytes"
            (Codec.to_string replacement) (Codec.to_string got)
      | Error e -> Alcotest.failf "fsck must adopt: %s" (Error.to_string e))

(* --- builder / error taxonomy integration --- *)

let test_interrupted_error_shape () =
  let e = Error.Interrupted { stage = "opt-a"; checkpoint = "/tmp/c.ckpt" } in
  Alcotest.(check int) "exit code 5" 5 (Error.exit_code e);
  Alcotest.(check bool) "mentions resume" true
    (Helpers.contains (Error.to_string e) "resume");
  let e' = Error.Corrupt_checkpoint { path = "/tmp/c.ckpt"; reason = "r" } in
  Alcotest.(check int) "corrupt checkpoint exits 3" 3 (Error.exit_code e')

let test_builder_checkpoint_only_for_opt_a () =
  let ds = Dataset.of_floats dp_data in
  match
    Builder.build_result ~checkpoint_path:"/tmp/x.ckpt" ds ~method_name:"sap0"
      ~budget_words:12
  with
  | Error (Error.Invalid_input _) -> ()
  | Ok _ -> Alcotest.fail "sap0 must refuse checkpointing"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)

let test_builder_checkpointed_build_matches_plain () =
  with_tmp ".ckpt" (fun path ->
      let ds = Dataset.of_floats opt_a_data in
      let plain =
        Error.get (Builder.build_result ds ~method_name:"opt-a" ~budget_words:8)
      in
      let ckpt =
        Error.get
          (Builder.build_result ~checkpoint_path:path ~checkpoint_every:0. ds
             ~method_name:"opt-a" ~budget_words:8)
      in
      Helpers.check_close ~tol:1e-9 "same SSE either way"
        (Synopsis.sse ds plain.Builder.synopsis)
        (Synopsis.sse ds ckpt.Builder.synopsis);
      (* checkpoint_every:0 forces at least one periodic snapshot. *)
      Alcotest.(check bool) "snapshot written mid-run" true
        (Sys.file_exists path))

(* --- golden snapshot fixtures ---

   The snapshot byte formats (dp-row-v1, opt-a-row-v1) are contractual:
   resume is bit-identical, so refactors of the DP internals — matrix
   storage, Ktbl slot layout, transition kernels — must not move a
   single byte.  These tests regenerate a snapshot with the exact
   recipe that produced the committed fixtures (test/fixtures/*.golden,
   written by the pre-refactor code) and compare whole files.  If a
   change legitimately revs a format, it must bump the snapshot kind
   and regenerate the fixture — never silently rewrite it. *)

let golden_data = Array.init 24 (fun i -> float_of_int (((i * 7) mod 13) - 3))

let golden_fixture name = Filename.concat "fixtures" name

let check_golden name got =
  let want = read_file (golden_fixture name) in
  if String.equal want got then ()
  else begin
    let flen = String.length want and glen = String.length got in
    let lim = min flen glen in
    let d = ref 0 in
    while !d < lim && want.[!d] = got.[!d] do incr d done;
    Alcotest.failf
      "%s: snapshot bytes drifted from the committed fixture (fixture %d \
       bytes, regenerated %d bytes, first difference at offset %d)"
      name flen glen !d
  end

let test_golden_dp_row_snapshot () =
  let p = Prefix.create golden_data in
  let ctx = Cost.make p in
  with_tmp ".ckpt" (fun path ->
      (try
         ignore
           (Dp.solve
              ~governor:
                (Governor.create ~deadline_mode:Governor.Snapshot
                   ~poll_budget:30 ())
              ~stage:"golden-dp" ~fingerprint:"golden-fixture"
              ~checkpoint_path:path ~n:24 ~buckets:4
              ~cost:(fun ~l ~r -> Cost.a0_bucket ctx ~l ~r)
              ());
         Alcotest.fail "golden dp run must be interrupted"
       with Governor.Interrupted _ -> ());
      check_golden "dp-row-v1.golden" (read_file path))

let test_golden_opt_a_row_snapshot () =
  let p = Prefix.create golden_data in
  with_tmp ".ckpt" (fun path ->
      (try
         ignore
           (Opt_a.build_exact
              ~governor:
                (Governor.create ~deadline_mode:Governor.Snapshot
                   ~poll_budget:20 ())
              ~key_cap:600 ~checkpoint_path:path p ~buckets:3);
         Alcotest.fail "golden opt-a run must be interrupted"
       with Governor.Interrupted _ -> ());
      check_golden "opt-a-row-v1.golden" (read_file path))

let () =
  Alcotest.run "checkpoint"
    [
      ("mclock", [ Alcotest.test_case "non-decreasing" `Quick test_mclock_non_decreasing ]);
      ( "governor",
        [
          Alcotest.test_case "poll budget" `Quick test_poll_budget_expires_exactly;
          Alcotest.test_case "snapshot mode" `Quick test_snapshot_mode_is_resumable;
          Alcotest.test_case "interval" `Quick test_checkpoint_interval_fires;
          Alcotest.test_case "unlimited" `Quick test_unlimited_never_expires;
          Alcotest.test_case "check raises" `Quick test_check_still_raises;
        ] );
      ( "container",
        [
          Alcotest.test_case "roundtrip" `Quick test_container_roundtrip;
          Alcotest.test_case "wrong kind" `Quick test_container_wrong_kind;
          Alcotest.test_case "missing file" `Quick test_container_missing_file;
          Alcotest.test_case "torn write" `Quick
            test_atomic_write_preserves_old_on_torn;
          Alcotest.test_case "rename failure" `Quick
            test_atomic_write_preserves_old_on_rename_failure;
          Alcotest.test_case "write seam" `Quick
            test_atomic_write_seam_fires_before_bytes;
        ] );
      ( "dp-resume",
        [
          Alcotest.test_case "kill at every row" `Quick
            test_dp_kill_and_resume_everywhere;
          Alcotest.test_case "identity checks" `Quick
            test_dp_resume_rejects_wrong_fingerprint;
        ] );
      ( "golden",
        [
          Alcotest.test_case "dp-row-v1 bytes" `Quick
            test_golden_dp_row_snapshot;
          Alcotest.test_case "opt-a-row-v1 bytes" `Quick
            test_golden_opt_a_row_snapshot;
        ] );
      ( "opt-a-resume",
        [
          Alcotest.test_case "kill at every row" `Quick
            test_opt_a_kill_and_resume_everywhere;
          Alcotest.test_case "interrupt twice" `Quick
            test_opt_a_double_interrupt_chain;
          Alcotest.test_case "periodic snapshots" `Quick
            test_opt_a_periodic_checkpoint_resume;
          Alcotest.test_case "identity checks" `Quick
            test_opt_a_resume_rejects_wrong_data;
        ] );
      ("fuzz", [ Alcotest.test_case "350 snapshot mutants" `Quick test_snapshot_fuzzer ]);
      ( "codec",
        [
          Alcotest.test_case "atomic save" `Quick test_codec_save_is_atomic;
          Alcotest.test_case "save_result" `Quick
            test_codec_save_result_reports_io;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "bad names" `Quick test_store_rejects_bad_names;
          Alcotest.test_case "heals manifest" `Quick
            test_store_heals_corrupt_manifest;
          Alcotest.test_case "fsck" `Quick test_store_fsck_quarantines_and_adopts;
          Alcotest.test_case "put fault seams" `Quick test_store_put_fault_seams;
          Alcotest.test_case "swapped entry" `Quick
            test_store_get_detects_swapped_entry;
          Alcotest.test_case "fsck under a held generation" `Quick
            test_store_fsck_under_held_generation;
          Alcotest.test_case "stale handle after put" `Quick
            test_store_stale_handle_after_put;
          Alcotest.test_case "open races the atomic rename" `Quick
            test_store_open_races_atomic_rename;
        ] );
      ( "builder",
        [
          Alcotest.test_case "error shape" `Quick test_interrupted_error_shape;
          Alcotest.test_case "opt-a only" `Quick
            test_builder_checkpoint_only_for_opt_a;
          Alcotest.test_case "checkpointed = plain" `Quick
            test_builder_checkpointed_build_matches_plain;
        ] );
    ]
