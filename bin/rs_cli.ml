(* range_synopsis — command-line interface.

   Subcommands:
     generate   write a named synthetic dataset to a file
     info       describe a dataset
     build      build a synopsis and print its summary
     query      answer range queries from a synopsis, with exact values
     evaluate   compare methods on a dataset (SSE & metrics)
     figure1    reproduce the paper's Figure 1 sweep
     claims     evaluate the paper's prose claims (C1..C5)
     reopt      the Section-5 re-optimization study (C4)
     rounding   the OPT-A-ROUNDED trade-off study (T4)
     scale      scalability sweep of the polynomial methods (S1)
     store      durable synopsis store (list / put / fsck)

   Exit codes follow Rs_util.Error.exit_code: 0 success, 2 bad input
   (dataset, method, IO), 3 corrupt synopsis or checkpoint, 4 state
   budget or deadline exhausted, 5 interrupted but resumable (a
   snapshot was written; re-run with --resume), 6 completed but
   degraded (a --segments build delivered a cheaper method than
   requested on some segment) — cmdliner reserves 124/125 for CLI
   errors. *)

open Cmdliner
module Dataset = Rs_core.Dataset
module Builder = Rs_core.Builder
module Synopsis = Rs_core.Synopsis
module Error = Rs_util.Error
module E = Rs_experiments

(* --- shared arguments --- *)

let dataset_arg =
  let doc =
    "Dataset: a file path (one frequency per line) or a generator name \
     (paper, zipf-<n>, mixture-<n>, uniform-<n>)."
  in
  Arg.(value & opt string "paper" & info [ "d"; "data" ] ~docv:"DATA" ~doc)

let load_dataset spec =
  if Sys.file_exists spec then Error.get (Dataset.load_result spec)
  else Dataset.generate spec

let budget_arg =
  let doc = "Storage budget in machine words." in
  Arg.(value & opt int 32 & info [ "b"; "budget" ] ~docv:"WORDS" ~doc)

let method_arg =
  let doc =
    Printf.sprintf "Construction method, one of: %s."
      (String.concat ", " Builder.methods)
  in
  Arg.(value & opt string "opt-a" & info [ "m"; "method" ] ~docv:"METHOD" ~doc)

let methods_arg =
  let doc = "Comma-separated list of methods (default: a representative set)." in
  Arg.(
    value
    & opt (list string) [ "equi-width"; "point-opt"; "a0"; "sap0"; "sap1"; "wave-range-opt" ]
    & info [ "methods" ] ~docv:"METHODS" ~doc)

let quick_arg =
  let doc = "Reduce sweep sizes and OPT-A state budgets (fast sanity run)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

(* --jobs N beats RS_JOBS beats 1; every count builds the same bytes,
   so parallelism is safe to default from the environment. *)
let env_jobs =
  match Sys.getenv_opt "RS_JOBS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with Failure _ -> 1)
  | None -> 1

let jobs_arg =
  let doc =
    "Worker domains for the level-parallel DP engines (opt-a, sap0, sap1, \
     point-opt).  Results are bit-identical for any value.  Defaults to \
     $(b,RS_JOBS), falling back to 1."
  in
  Arg.(value & opt int env_jobs & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* --engine beats RS_ENGINE beats auto.  Auto only takes the monotone
   divide-and-conquer engine when the result is provably identical to
   the level engine's, so defaulting from the environment is safe; an
   explicit monotone that cannot be honored is a typed error. *)
let env_engine =
  match Sys.getenv_opt "RS_ENGINE" with
  | Some s -> (
      match Rs_histogram.Dp.engine_of_string (String.trim s) with
      | Some e -> e
      | None -> Builder.default_options.Builder.engine)
  | None -> Builder.default_options.Builder.engine

let engine_conv =
  let parse s =
    match Rs_histogram.Dp.engine_of_string s with
    | Some e -> Ok e
    | None ->
        Error (`Msg (Printf.sprintf "engine must be auto, monotone or level (got %S)" s))
  in
  Arg.conv (parse, fun fmt e -> Format.pp_print_string fmt (Rs_histogram.Dp.engine_name e))

let engine_arg =
  let doc =
    "Interval-DP engine for the polynomial histogram methods (point-opt, \
     v-optimal, sap0, sap1, a0, prefix-opt and their -reopt variants): \
     $(b,auto) picks the O(n log n) monotone divide-and-conquer engine \
     whenever the method's cost is QI-certified for the input (sorted data; \
     never for sap0/sap1/a0) and the run is sequential and uncheckpointed, \
     falling back to the exact quadratic-per-level engine otherwise; \
     $(b,monotone) demands the fast engine (typed error if the certificate, \
     --jobs or --checkpoint-dir forbid it, never a silent downgrade); \
     $(b,level) forces the classic engine.  Defaults to $(b,RS_ENGINE), \
     falling back to auto."
  in
  Arg.(value & opt engine_conv env_engine & info [ "engine" ] ~docv:"ENGINE" ~doc)

let opt_a_states_arg =
  let doc =
    "State budget for the exact OPT-A dynamic program (default 6e7; the \
     staged builder falls down the degradation ladder beyond it)."
  in
  Arg.(value & opt (some int) None & info [ "opt-a-states" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc =
    "Wall-clock deadline in seconds for synopsis construction; the opt-a \
     ladder degrades to cheaper rungs (opt-a-rounded, then a0) rather than \
     overrun it."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let options_of ?(jobs = env_jobs) ?(engine = env_engine) quick states =
  let base =
    if quick then
      { Builder.default_options with Builder.opt_a_max_states = 2_000_000 }
    else Builder.default_options
  in
  let base = { base with Builder.jobs = max 1 jobs; Builder.engine = engine } in
  match states with
  | Some s -> { base with Builder.opt_a_max_states = s }
  | None -> base

let options_of_quick quick = options_of quick None

(* Typed errors become distinct exit codes (see Rs_util.Error.exit_code);
   everything the library reports lands here as an Error.t.  [wrap_code]
   lets a command pick its own success code (the segmented build's
   completed-with-degradation 6). *)
let wrap_code f =
  match Error.guard f with
  | Ok code -> code
  | Error e ->
      Printf.eprintf "rs_cli: %s\n%!" (Error.to_string e);
      Error.exit_code e

let wrap f =
  wrap_code (fun () ->
      f ();
      0)

let exits =
  Cmd.Exit.defaults
  @ [
      Cmd.Exit.info 2 ~doc:"on bad input (dataset, unknown method, IO).";
      Cmd.Exit.info 3 ~doc:"on a corrupt synopsis or checkpoint file.";
      Cmd.Exit.info 4 ~doc:"on an exhausted state budget or deadline.";
      Cmd.Exit.info 5
        ~doc:
          "interrupted but resumable: the deadline expired and a checkpoint \
           was written; re-run with --resume to continue.";
      Cmd.Exit.info 6
        ~doc:
          "completed with degradation: a --segments build delivered a \
           cheaper method than requested on one or more segments (see the \
           per-segment report).";
    ]

let command name ~doc term = Cmd.v (Cmd.info name ~doc ~exits) term

let print_report built =
  match built.Builder.report with
  | Some r when r.Builder.delivered <> r.Builder.requested ->
      List.iter print_endline (Builder.report_lines r)
  | _ -> ()

(* --- generate --- *)

let generate_cmd =
  let name_arg =
    Arg.(value & opt string "zipf-256" & info [ "g"; "generator" ] ~docv:"NAME"
           ~doc:"Generator name (paper, zipf-<n>, mixture-<n>, uniform-<n>).")
  in
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Output file.")
  in
  let run name out =
    wrap (fun () ->
        let ds = Dataset.generate name in
        Dataset.save ds out;
        Printf.printf "wrote %s: n=%d total=%.0f\n" out (Dataset.n ds)
          (Dataset.total ds))
  in
  command "generate" ~doc:"Write a synthetic dataset to a file."
    Term.(const run $ name_arg $ out_arg)

(* --- info --- *)

let info_cmd =
  let run data =
    wrap (fun () ->
        let ds = load_dataset data in
        let v = Dataset.values ds in
        let mx = Array.fold_left Float.max 0. v in
        Printf.printf "dataset %s\n  n        %d\n  total    %.0f\n  max      %.0f\n  integral %b\n"
          (Dataset.name ds) (Dataset.n ds) (Dataset.total ds) mx
          (Dataset.is_integral ds))
  in
  command "info" ~doc:"Describe a dataset." Term.(const run $ dataset_arg)

(* --- build --- *)

let build_cmd =
  let save_arg =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE"
           ~doc:"Persist the synopsis to a file (see the Codec format).")
  in
  let checkpoint_dir_arg =
    Arg.(value & opt (some string) None
           & info [ "checkpoint-dir" ] ~docv:"DIR"
               ~doc:"Write resumable OPT-A snapshots to $(docv)/opt-a.ckpt. \
                     With --deadline, expiry then exits with code 5 (snapshot \
                     written) instead of degrading down the ladder.")
  in
  let resume_arg =
    Arg.(value & flag
           & info [ "resume" ]
               ~doc:"Resume from the snapshot in --checkpoint-dir, replaying \
                     from the last completed DP row (bit-identical result).")
  in
  let checkpoint_every_arg =
    Arg.(value & opt (some float) None
           & info [ "checkpoint-every" ] ~docv:"SECONDS"
               ~doc:"Also snapshot periodically while the DP runs (crash \
                     safety, not just deadline safety).")
  in
  let metrics_out_arg =
    Arg.(value & opt (some string) None
           & info [ "metrics-out" ] ~docv:"FILE"
               ~doc:"Enable the metrics registry for this build and write the \
                     JSON report (DP states explored/pruned, beam \
                     truncations, ladder rungs, snapshot and pool counters) \
                     to $(docv).  RS_METRICS=1 instead dumps the report to \
                     stderr.")
  in
  let segments_arg =
    Arg.(value & opt (some int) None
           & info [ "segments" ] ~docv:"S"
               ~doc:"Segmented build: split the domain into $(docv) contiguous \
                     segments and build one synopsis per segment under the \
                     fault-tolerant supervisor (per-segment retry with \
                     backoff, degradation down the method ladder, crash-safe \
                     resume via --checkpoint-dir).  Ranges are answered by \
                     composition (exact interior totals + boundary \
                     estimates).  Exits 6 when the build completed but some \
                     segment degraded.")
  in
  let planner_arg =
    Arg.(value
           & opt (enum [ ("greedy", `Greedy); ("uniform", `Uniform) ]) `Greedy
           & info [ "planner" ] ~docv:"PLANNER"
               ~doc:"Cross-segment budget planner for --segments: $(b,greedy) \
                     grants words where the marginal range-SSE drop is \
                     largest; $(b,uniform) splits evenly.")
  in
  let run_segmented ~data ~m ~budget ~options ~deadline ~ckpt_dir ~resume
      ~every ~metrics_out ~save ~planner ~segments =
    if save <> None then
      Error.raise_error
        (Error.Invalid_input
           "--save is not supported with --segments (use --checkpoint-dir: \
            the store keeps one entry per segment)");
    let ds = load_dataset data in
    let res, dt =
      E.Timing.time (fun () ->
          Rs_core.Supervisor.build ~options ?manifest_dir:ckpt_dir ~resume
            ?deadline ?checkpoint_every:every ~planner ds ~method_name:m
            ~budget_words:budget ~segments)
    in
    let t, report = Error.get res in
    print_endline (Rs_core.Segmented.describe t);
    List.iter print_endline (Rs_core.Supervisor.report_lines report);
    Printf.printf "built in %.3fs\n" dt;
    Printf.printf "SSE over all ranges: %.6g\n" (Rs_core.Segmented.sse ds t);
    (match metrics_out with
    | Some path ->
        Rs_util.Metrics.write_json path;
        Printf.printf "metrics written to %s\n" path
    | None -> ());
    if Rs_core.Supervisor.degraded report then 6 else 0
  in
  let run data m budget quick states jobs engine deadline save ckpt_dir resume
      every metrics_out segments planner =
    wrap_code (fun () ->
        if metrics_out <> None then begin
          Rs_util.Metrics.enable ();
          Rs_util.Trace.enable ()
        end;
        match segments with
        | Some segments ->
            if resume && ckpt_dir = None then
              Error.raise_error
                (Error.Invalid_input "--resume requires --checkpoint-dir");
            let options = options_of ~jobs ~engine quick states in
            run_segmented ~data ~m ~budget ~options ~deadline ~ckpt_dir ~resume
              ~every ~metrics_out ~save ~planner ~segments
        | None ->
        let checkpoint_path =
          Option.map
            (fun dir ->
              (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
               with Unix.Unix_error (e, _, _) ->
                 Error.raise_error
                   (Error.Io_failure
                      { path = dir; reason = Unix.error_message e }));
              Filename.concat dir "opt-a.ckpt")
            ckpt_dir
        in
        let resume_from =
          if not resume then None
          else
            match checkpoint_path with
            | Some _ as p -> p
            | None ->
                Error.raise_error
                  (Error.Invalid_input "--resume requires --checkpoint-dir")
        in
        let ds = load_dataset data in
        let options = options_of ~jobs ~engine quick states in
        let built, dt =
          E.Timing.time (fun () ->
              Error.get
                (Builder.build_result ~options ?deadline ?checkpoint_path
                   ?resume_from ?checkpoint_every:every ds ~method_name:m
                   ~budget_words:budget))
        in
        let s = built.Builder.synopsis in
        print_endline (Synopsis.describe s);
        print_report built;
        Printf.printf "built in %.3fs\n" dt;
        Printf.printf "SSE over all ranges: %.6g\n" (Synopsis.sse ds s);
        (match save with
        | Some path ->
            Rs_core.Codec.save s path;
            Printf.printf "saved to %s\n" path
        | None -> ());
        (match metrics_out with
        | Some path ->
            Rs_util.Metrics.write_json path;
            Printf.printf "metrics written to %s\n" path
        | None -> ());
        0)
  in
  command "build" ~doc:"Build a synopsis and report its quality."
    Term.(
      const run $ dataset_arg $ method_arg $ budget_arg $ quick_arg
      $ opt_a_states_arg $ jobs_arg $ engine_arg $ deadline_arg $ save_arg
      $ checkpoint_dir_arg $ resume_arg $ checkpoint_every_arg
      $ metrics_out_arg $ segments_arg $ planner_arg)

(* --- query --- *)

let query_cmd =
  let ranges_arg =
    Arg.(
      non_empty
      & pos_all (pair ~sep:':' int int) []
      & info [] ~docv:"A:B" ~doc:"Ranges to answer, e.g. 3:17.")
  in
  let synopsis_arg =
    Arg.(value & opt (some string) None & info [ "synopsis" ] ~docv:"FILE"
           ~doc:"Answer from a previously saved synopsis instead of building one.")
  in
  let run data m budget ranges synopsis =
    wrap (fun () ->
        let ds = load_dataset data in
        let s =
          match synopsis with
          | Some path -> Error.get (Rs_core.Codec.load_result path)
          | None ->
              (Error.get
                 (Builder.build_result ds ~method_name:m ~budget_words:budget))
                .Builder.synopsis
        in
        let p = Dataset.prefix ds in
        Printf.printf "%-14s %14s %14s %10s\n" "range" "exact" "estimate" "error";
        List.iter
          (fun (a, b) ->
            let exact = Rs_util.Prefix.range_sum p ~a ~b in
            let est = Synopsis.estimate s ~a ~b in
            Printf.printf "[%5d,%5d]  %14.0f %14.2f %9.2f%%\n" a b exact est
              (100. *. abs_float (est -. exact) /. Float.max 1. exact))
          ranges)
  in
  command "query" ~doc:"Answer range-sum queries from a synopsis."
    Term.(
      const run $ dataset_arg $ method_arg $ budget_arg $ ranges_arg
      $ synopsis_arg)

(* --- evaluate --- *)

let evaluate_cmd =
  let run data methods budget quick jobs engine deadline =
    wrap (fun () ->
        let ds = load_dataset data in
        let options = options_of ~jobs ~engine quick None in
        let reports = ref [] in
        let rows =
          List.map
            (fun m ->
              let built, dt =
                E.Timing.time (fun () ->
                    Error.get
                      (Builder.build_result ~options ?deadline ds
                         ~method_name:m ~budget_words:budget))
              in
              (match built.Builder.report with
              | Some r when r.Builder.delivered <> r.Builder.requested ->
                  reports := r :: !reports
              | _ -> ());
              let s = built.Builder.synopsis in
              let metrics = Synopsis.metrics ds s in
              [
                m;
                string_of_int (Synopsis.storage_words s);
                Rs_util.Text_table.float_cell ~prec:4 metrics.Rs_query.Error.sse;
                Rs_util.Text_table.float_cell ~prec:2 metrics.Rs_query.Error.rmse;
                Rs_util.Text_table.float_cell ~prec:2 metrics.Rs_query.Error.max_abs;
                Printf.sprintf "%.2f%%" (100. *. metrics.Rs_query.Error.mean_rel);
                Printf.sprintf "%.3fs" dt;
              ])
            methods
        in
        print_string
          (Rs_util.Text_table.render
             ~header:[ "method"; "words"; "sse"; "rmse"; "max err"; "mean rel"; "build" ]
             rows);
        List.iter
          (fun r -> List.iter print_endline (Builder.report_lines r))
          (List.rev !reports))
  in
  command "evaluate" ~doc:"Compare methods on one dataset and budget."
    Term.(
      const run $ dataset_arg $ methods_arg $ budget_arg $ quick_arg
      $ jobs_arg $ engine_arg $ deadline_arg)

(* --- experiment commands --- *)

let figure1_cmd =
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Print long-form CSV instead of tables.")
  in
  let run data quick csv =
    wrap (fun () ->
        let ds = load_dataset data in
        let options = options_of_quick quick in
        let budgets = if quick then [ 8; 16; 24 ] else E.Figure1.default_budgets in
        let rows =
          E.Figure1.run ~options ~budgets ~methods:E.Figure1.extended_methods ds
        in
        if csv then print_string (E.Figure1.csv rows)
        else begin
          print_string (E.Figure1.table rows);
          print_newline ();
          print_string (E.Claims.table (E.Claims.all rows))
        end)
  in
  command "figure1" ~doc:"Reproduce Figure 1 (SSE vs storage)."
    Term.(const run $ dataset_arg $ quick_arg $ csv_arg)

let claims_cmd =
  let run data quick =
    wrap (fun () ->
        let ds = load_dataset data in
        let options = options_of_quick quick in
        let budgets = if quick then [ 8; 16; 24 ] else E.Figure1.default_budgets in
        let rows =
          E.Figure1.run ~options ~budgets ~methods:E.Figure1.extended_methods ds
        in
        print_string (E.Claims.table (E.Claims.all rows)))
  in
  command "claims" ~doc:"Evaluate the paper's prose claims (C1..C5)."
    Term.(const run $ dataset_arg $ quick_arg)

let reopt_cmd =
  let run data quick =
    wrap (fun () ->
        let ds = load_dataset data in
        let options = options_of_quick quick in
        let budgets = if quick then [ 8; 16 ] else [ 8; 16; 24; 32 ] in
        let rows = E.Reopt_study.run ~options ~budgets ds in
        print_string (E.Reopt_study.table rows);
        print_newline ();
        print_string (E.Claims.table [ E.Reopt_study.verdict rows ]))
  in
  command "reopt" ~doc:"Section-5 re-optimization study (C4)."
    Term.(const run $ dataset_arg $ quick_arg)

let rounding_cmd =
  let buckets_arg =
    Arg.(value & opt int 8 & info [ "buckets" ] ~docv:"B" ~doc:"Bucket count.")
  in
  let run data quick buckets =
    wrap (fun () ->
        let ds = load_dataset data in
        let xs = if quick then [ 1; 8; 64 ] else [ 1; 2; 4; 8; 16; 32; 64 ] in
        let max_states = if quick then 2_000_000 else 60_000_000 in
        let rows = E.Rounding_study.run ~buckets ~xs ~max_states ds in
        print_string (E.Rounding_study.table rows);
        print_newline ();
        print_string (E.Claims.table [ E.Rounding_study.verdict rows ]))
  in
  command "rounding" ~doc:"OPT-A-ROUNDED trade-off study (T4)."
    Term.(const run $ dataset_arg $ quick_arg $ buckets_arg)

let scale_cmd =
  let jobs_sweep_arg =
    Arg.(value & flag
           & info [ "jobs-sweep" ]
               ~doc:"Also time the exact OPT-A DP at jobs = 1, 2, 4 on the \
                     Figure-1 dataset (the PR-3 speedup table).")
  in
  let run quick jobs jobs_sweep =
    wrap (fun () ->
        let ns = if quick then [ 127; 255 ] else E.Scalability.default_ns in
        let options = options_of ~jobs quick None in
        print_string (E.Scalability.table (E.Scalability.run ~ns ~options ()));
        if jobs_sweep then begin
          let max_states = if quick then 2_000_000 else 60_000_000 in
          let rec sweep_at x =
            try E.Scalability.run_jobs ~max_states ~x ()
            with Rs_histogram.Opt_a.Too_many_states _ when x < 1024 ->
              sweep_at (x * 4)
          in
          print_newline ();
          print_string
            (E.Scalability.jobs_table (sweep_at (if quick then 8 else 1)))
        end)
  in
  command "scale" ~doc:"Scalability sweep (S1)."
    Term.(const run $ quick_arg $ jobs_arg $ jobs_sweep_arg)

let workload_cmd =
  let run data =
    wrap (fun () ->
        let ds = load_dataset data in
        let rows = E.Workload_study.run ds in
        print_string (E.Workload_study.table rows);
        print_newline ();
        print_string (E.Claims.table [ E.Workload_study.verdict rows ]))
  in
  command "workload" ~doc:"Workload-aware histogram study (W1, extension)."
    Term.(const run $ dataset_arg)

let dim2_cmd =
  let n_arg =
    Arg.(value & opt int 31 & info [ "n" ] ~docv:"N" ~doc:"Grid side length.")
  in
  let run n =
    wrap (fun () ->
        let rows = E.Dim2_study.run ~n () in
        print_string (E.Dim2_study.table rows);
        print_newline ();
        print_string (E.Claims.table [ E.Dim2_study.verdict rows ]))
  in
  command "dim2" ~doc:"Two-dimensional range aggregates (D2, footnote 2)."
    Term.(const run $ n_arg)

(* --- store --- *)

let store_dir_arg =
  Arg.(value & opt string "synopses" & info [ "dir" ] ~docv:"DIR"
         ~doc:"Store directory (created on first use).")

let store_list_cmd =
  let run dir =
    wrap (fun () ->
        let store = Rs_core.Store.open_dir dir in
        let names = Rs_core.Store.list store in
        Printf.printf "%d synopsis(es) in %s\n" (List.length names) dir;
        List.iter
          (fun name ->
            match Rs_core.Store.get store ~name with
            | Ok s -> Printf.printf "  %-20s %s\n" name (Synopsis.describe s)
            | Error e -> Printf.printf "  %-20s UNREADABLE: %s\n" name
                           (Error.to_string e))
          names)
  in
  command "list" ~doc:"List the synopses in a store."
    Term.(const run $ store_dir_arg)

let store_put_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME"
           ~doc:"Entry name ([A-Za-z0-9._-]+).")
  in
  let run dir name data m budget quick =
    wrap (fun () ->
        let ds = load_dataset data in
        let options = options_of_quick quick in
        let built =
          Error.get
            (Builder.build_result ~options ds ~method_name:m
               ~budget_words:budget)
        in
        let store = Rs_core.Store.open_dir dir in
        Rs_core.Store.put store ~name built.Builder.synopsis;
        print_report built;
        Printf.printf "stored %s in %s: %s\n" name dir
          (Synopsis.describe built.Builder.synopsis))
  in
  command "put" ~doc:"Build a synopsis and store it under a name."
    Term.(
      const run $ store_dir_arg $ name_arg $ dataset_arg $ method_arg
      $ budget_arg $ quick_arg)

let store_fsck_cmd =
  let run dir =
    wrap (fun () ->
        let store = Rs_core.Store.open_dir dir in
        let r = Rs_core.Store.fsck store in
        Printf.printf "%s: %d entries ok\n" dir (List.length r.Rs_core.Store.ok);
        List.iter
          (fun (name, reason) ->
            Printf.printf "  quarantined %s: %s\n" name reason)
          r.Rs_core.Store.quarantined;
        List.iter
          (fun file -> Printf.printf "  removed stray temp file %s\n" file)
          r.Rs_core.Store.removed_tmp;
        if r.Rs_core.Store.manifest_rebuilt then
          print_endline "  manifest rebuilt")
  in
  command "fsck" ~doc:"Check and repair a store: quarantine corrupt entries, \
                       remove stray temp files, rebuild the manifest."
    Term.(const run $ store_dir_arg)

let store_cmd =
  Cmd.group
    (Cmd.info "store" ~doc:"Durable synopsis store (crash-safe, self-healing)."
       ~exits)
    [ store_list_cmd; store_put_cmd; store_fsck_cmd ]

let main_cmd =
  let doc = "summary statistics for range aggregates (PODS 2001 reproduction)" in
  Cmd.group
    (Cmd.info "range_synopsis" ~version:"1.0.0" ~doc ~exits)
    [
      generate_cmd; info_cmd; build_cmd; query_cmd; evaluate_cmd; figure1_cmd;
      claims_cmd; reopt_cmd; rounding_cmd; scale_cmd; workload_cmd; dim2_cmd;
      store_cmd;
    ]

(* RS_LOG / RS_METRICS handling lives in Rs_util.Logging so the CLI,
   bench and examples share one environment contract (and unknown
   RS_LOG values warn instead of being silently ignored). *)
let () =
  Rs_util.Logging.setup_from_env ();
  let code = Cmd.eval' main_cmd in
  (* RS_METRICS=1 without --metrics-out: dump the report to stderr so
     any subcommand (store ops, evaluate, figure1...) can be observed
     without new flags. *)
  if Rs_util.Logging.metrics_env_requested () then
    prerr_string (Rs_util.Metrics.to_json ());
  exit code
