(* range_synopsis — the serving daemon (DESIGN.md §14).

   Loads a synopsis store once and answers line-delimited JSON range
   queries over a Unix-domain socket (or stdio with --stdio) until a
   shutdown request: admission control against per-request deadlines
   and poll budgets, a labeled exact → bound → stale degradation
   ladder, bounded-queue load shedding with retry-after hints, and
   crash-only hot reload of the store generation.

   Exit codes follow Rs_util.Error.exit_code: 0 clean shutdown, 2 bad
   input (store directory, dataset, socket), 3 corrupt store beyond
   self-healing.  Protocol and invariants: README "Serving" and
   DESIGN.md §14. *)

open Cmdliner
module Error = Rs_util.Error
module Server = Rs_serve.Server
module Daemon = Rs_serve.Daemon

let store_arg =
  let doc = "Synopsis store directory (as written by rs_cli store put)." in
  Arg.(required & opt (some string) None & info [ "s"; "store" ] ~docv:"DIR" ~doc)

let socket_arg =
  let doc =
    "Unix-domain socket path to listen on (default: $(i,STORE)/rs_serve.sock)."
  in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let stdio_arg =
  let doc =
    "Serve stdin/stdout instead of a socket (one request line in, one \
     response line out) — for scripting and tests."
  in
  Arg.(value & flag & info [ "stdio" ] ~doc)

let data_arg =
  let doc =
    "Dataset the stored synopses summarize: a file path or a generator name \
     (paper, zipf-<n>, mixture-<n>, uniform-<n>).  Enables the per-answer \
     RMSE bound; without it answers carry no bound."
  in
  Arg.(value & opt (some string) None & info [ "d"; "data" ] ~docv:"DATA" ~doc)

let jobs_arg =
  let doc = "Evaluation worker domains (1 = strictly sequential)." in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let queue_arg =
  let doc = "Request-queue capacity; queries beyond it are shed (overloaded)." in
  Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)

let cache_arg =
  let doc = "Answer-cache capacity (the stale rung's reach; 0 disables)." in
  Arg.(value & opt int 256 & info [ "cache" ] ~docv:"N" ~doc)

let cache_policy_arg =
  let doc =
    "Answer-cache eviction policy: $(b,lru) (default) or $(b,fifo) (the \
     insertion-order twin).  Both are deterministic; answers are \
     byte-identical either way."
  in
  Arg.(
    value
    & opt (enum [ ("lru", Rs_serve.Cache.Lru); ("fifo", Rs_serve.Cache.Fifo) ])
        Rs_serve.Cache.Lru
    & info [ "cache-policy" ] ~docv:"POLICY" ~doc)

let no_batch_arg =
  let doc =
    "Evaluate the exact rung with the per-range estimator loop instead of \
     the vectorized batch kernel (the determinism twin; responses are \
     byte-identical, only slower)."
  in
  Arg.(value & flag & info [ "no-batch-eval" ] ~doc)

let deadline_arg =
  let doc =
    "Default per-request deadline in milliseconds, applied to queries that \
     carry none of their own."
  in
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let stale_threshold_arg =
  let doc =
    "Staleness demotion threshold: once a stream-backed synopsis has \
     absorbed more than this much absolute ingest mass since its last \
     rebuild, its answers are flagged stale and their construction-time \
     RMSE bound is withheld.  Defaults to the threshold recorded in the \
     store's stream manifest."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "stale-threshold" ] ~docv:"MASS" ~doc)

let serve store socket stdio data jobs queue cache cache_policy no_batch
    deadline_ms stale_threshold =
  match
    Error.guard (fun () ->
        if jobs < 1 then
          Error.raise_error (Error.Invalid_input "--jobs must be >= 1");
        if queue < 1 then
          Error.raise_error (Error.Invalid_input "--queue must be >= 1");
        let dataset =
          Option.map
            (fun spec ->
              if Sys.file_exists spec then
                Error.get (Rs_core.Dataset.load_result spec)
              else Rs_core.Dataset.generate spec)
            data
        in
        let config =
          {
            (Server.default_config ~store_dir:store) with
            Server.dataset;
            jobs;
            queue_capacity = queue;
            cache_capacity = cache;
            cache_policy;
            batch_eval = not no_batch;
            default_deadline_ms = deadline_ms;
            stale_threshold;
          }
        in
        let server = Error.get (Server.create config) in
        Fun.protect ~finally:(fun () -> Server.close server) @@ fun () ->
        if stdio then Daemon.run_stdio server
        else
          let socket =
            match socket with
            | Some s -> s
            | None -> Filename.concat store "rs_serve.sock"
          in
          Daemon.run server ~socket)
  with
  | Ok () -> 0
  | Error e ->
      Printf.eprintf "rs_serve: %s\n%!" (Error.to_string e);
      Error.exit_code e

let exits =
  Cmd.Exit.defaults
  @ [
      Cmd.Exit.info 2 ~doc:"on bad input (store directory, dataset, socket).";
      Cmd.Exit.info 3 ~doc:"on a store corrupt beyond self-healing.";
    ]

let main_cmd =
  let doc = "serve range-aggregate queries from a synopsis store" in
  Cmd.v
    (Cmd.info "rs_served" ~version:"1.0.0" ~doc ~exits)
    Term.(
      const serve $ store_arg $ socket_arg $ stdio_arg $ data_arg $ jobs_arg
      $ queue_arg $ cache_arg $ cache_policy_arg $ no_batch_arg $ deadline_arg
      $ stale_threshold_arg)

(* Same environment contract as rs_cli and the bench: RS_LOG selects
   the log level (unknown values warn, naming the accepted set),
   RS_METRICS=1 enables recording and dumps rs-metrics-v1 on exit. *)
let () =
  Rs_util.Logging.setup_from_env ();
  let code = Cmd.eval' main_cmd in
  if Rs_util.Logging.metrics_env_requested () then
    prerr_string (Rs_util.Metrics.to_json ());
  exit code
